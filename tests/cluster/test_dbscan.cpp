#include "cluster/dbscan.hpp"

#include <gtest/gtest.h>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "geom/kdtree.hpp"

namespace perftrack::cluster {
namespace {

geom::PointSet blob(std::span<const std::pair<double, double>> centres,
                    std::size_t per_blob, double sigma, std::uint64_t seed) {
  Rng rng(seed);
  geom::PointSet points(2);
  for (auto [cx, cy] : centres)
    for (std::size_t i = 0; i < per_blob; ++i)
      points.add(std::vector<double>{cx + rng.normal(0.0, sigma),
                                     cy + rng.normal(0.0, sigma)});
  return points;
}

TEST(DbscanTest, EmptyInput) {
  geom::PointSet points(2);
  DbscanResult result = dbscan(points, {});
  EXPECT_EQ(result.cluster_count, 0);
  EXPECT_TRUE(result.labels.empty());
}

TEST(DbscanTest, RejectsBadParams) {
  geom::PointSet points(2, {0.0, 0.0});
  EXPECT_THROW(dbscan(points, {.eps = 0.0, .min_pts = 1}),
               PreconditionError);
  EXPECT_THROW(dbscan(points, {.eps = 0.1, .min_pts = 0}),
               PreconditionError);
}

TEST(DbscanTest, TwoSeparatedBlobs) {
  std::vector<std::pair<double, double>> centres{{0.2, 0.2}, {0.8, 0.8}};
  geom::PointSet points = blob(centres, 100, 0.01, 3);
  DbscanResult result = dbscan(points, {.eps = 0.05, .min_pts = 5});
  EXPECT_EQ(result.cluster_count, 2);
  EXPECT_EQ(result.noise_count(), 0u);
  // All points of one blob share a label.
  std::set<std::int32_t> first_blob(result.labels.begin(),
                                    result.labels.begin() + 100);
  EXPECT_EQ(first_blob.size(), 1u);
  std::set<std::int32_t> second_blob(result.labels.begin() + 100,
                                     result.labels.end());
  EXPECT_EQ(second_blob.size(), 1u);
  EXPECT_NE(*first_blob.begin(), *second_blob.begin());
}

TEST(DbscanTest, SparsePointsAreNoise) {
  std::vector<std::pair<double, double>> centres{{0.5, 0.5}};
  geom::PointSet points = blob(centres, 50, 0.005, 7);
  points.add(std::vector<double>{0.0, 0.0});  // isolated outlier
  DbscanResult result = dbscan(points, {.eps = 0.03, .min_pts = 5});
  EXPECT_EQ(result.cluster_count, 1);
  EXPECT_EQ(result.labels.back(), kNoise);
  EXPECT_EQ(result.noise_count(), 1u);
}

TEST(DbscanTest, MinPtsTooHighMakesEverythingNoise) {
  std::vector<std::pair<double, double>> centres{{0.5, 0.5}};
  geom::PointSet points = blob(centres, 10, 0.005, 7);
  DbscanResult result = dbscan(points, {.eps = 0.03, .min_pts = 50});
  EXPECT_EQ(result.cluster_count, 0);
  EXPECT_EQ(result.noise_count(), 10u);
}

TEST(DbscanTest, ChainConnectivityMergesElongatedCluster) {
  // A line of dense blobs spaced under eps apart forms ONE cluster — the
  // "stretched" imbalance clusters of the paper rely on this.
  geom::PointSet points(2);
  Rng rng(11);
  for (int step = 0; step < 20; ++step)
    for (int i = 0; i < 20; ++i)
      points.add(std::vector<double>{0.02 * step + rng.normal(0.0, 0.002),
                                     0.5 + rng.normal(0.0, 0.002)});
  DbscanResult result = dbscan(points, {.eps = 0.025, .min_pts = 5});
  EXPECT_EQ(result.cluster_count, 1);
}

TEST(DbscanTest, DeterministicLabels) {
  std::vector<std::pair<double, double>> centres{
      {0.2, 0.2}, {0.8, 0.8}, {0.2, 0.8}};
  geom::PointSet points = blob(centres, 60, 0.01, 5);
  DbscanParams params{.eps = 0.05, .min_pts = 4};
  DbscanResult a = dbscan(points, params);
  DbscanResult b = dbscan(points, params);
  EXPECT_EQ(a.labels, b.labels);
}

// Property: every point labelled into a cluster has either >= min_pts
// neighbours (core) or a core point within eps (border); noise has no core
// point within eps.
class DbscanInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DbscanInvariants, CoreAndBorderConditionsHold) {
  Rng rng(GetParam());
  geom::PointSet points(2);
  int blobs = static_cast<int>(rng.uniform_int(1, 4));
  for (int c = 0; c < blobs; ++c) {
    double cx = rng.uniform(0.1, 0.9), cy = rng.uniform(0.1, 0.9);
    int n = static_cast<int>(rng.uniform_int(10, 80));
    for (int i = 0; i < n; ++i)
      points.add(std::vector<double>{cx + rng.normal(0.0, 0.02),
                                     cy + rng.normal(0.0, 0.02)});
  }
  for (int i = 0; i < 10; ++i)  // scattered noise
    points.add(std::vector<double>{rng.uniform(0.0, 1.0),
                                   rng.uniform(0.0, 1.0)});

  DbscanParams params{.eps = 0.03, .min_pts = 6};
  DbscanResult result = dbscan(points, params);

  geom::KdTree tree(points);
  std::vector<bool> is_core(points.size(), false);
  for (std::size_t i = 0; i < points.size(); ++i)
    is_core[i] =
        tree.radius_query(points[i], params.eps).size() >= params.min_pts;

  for (std::size_t i = 0; i < points.size(); ++i) {
    auto neighbours = tree.radius_query(points[i], params.eps);
    bool near_core = false;
    for (std::size_t n : neighbours)
      if (is_core[n]) near_core = true;
    if (result.labels[i] == kNoise) {
      EXPECT_FALSE(near_core) << "noise point " << i << " near a core point";
    } else {
      EXPECT_TRUE(near_core) << "clustered point " << i << " has no core";
      // Core neighbours must share the point's cluster.
      if (is_core[i]) {
        for (std::size_t n : neighbours) {
          if (is_core[n]) {
            EXPECT_EQ(result.labels[i], result.labels[n])
                << "cores " << i << " and " << n << " within eps differ";
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DbscanInvariants,
                         ::testing::Values(1, 9, 17, 33, 65));

// The grid engine must reproduce the kd-tree engine's labels bit-for-bit:
// same cluster ids, same border assignment, same noise.
class DbscanEngineEquivalence : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(DbscanEngineEquivalence, GridMatchesKdTreeLabels) {
  Rng rng(GetParam());
  geom::PointSet points(2);
  int blobs = static_cast<int>(rng.uniform_int(1, 5));
  for (int c = 0; c < blobs; ++c) {
    double cx = rng.uniform(0.1, 0.9), cy = rng.uniform(0.1, 0.9);
    int n = static_cast<int>(rng.uniform_int(5, 120));
    double sigma = rng.uniform(0.003, 0.04);
    for (int i = 0; i < n; ++i)
      points.add(std::vector<double>{cx + rng.normal(0.0, sigma),
                                     cy + rng.normal(0.0, sigma)});
  }
  for (int i = 0; i < 15; ++i)  // scattered noise / border candidates
    points.add(std::vector<double>{rng.uniform(0.0, 1.0),
                                   rng.uniform(0.0, 1.0)});

  for (double eps : {0.01, 0.03, 0.08}) {
    for (std::size_t min_pts : {std::size_t{1}, std::size_t{4},
                                std::size_t{10}}) {
      DbscanParams kd{.eps = eps, .min_pts = min_pts,
                      .index = DbscanIndex::kKdTree};
      DbscanParams grid{.eps = eps, .min_pts = min_pts,
                        .index = DbscanIndex::kGrid};
      DbscanResult expected = dbscan(points, kd);
      DbscanResult actual = dbscan(points, grid);
      EXPECT_EQ(actual.cluster_count, expected.cluster_count)
          << "eps=" << eps << " min_pts=" << min_pts;
      EXPECT_EQ(actual.labels, expected.labels)
          << "eps=" << eps << " min_pts=" << min_pts;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DbscanEngineEquivalence,
                         ::testing::Values(2, 10, 18, 34, 66, 130));

TEST(DbscanTest, AutoIndexFallsBackOnHighDimensions) {
  // 5-D data takes the kd-tree path in auto mode; pinning the grid still
  // works and agrees, it is just not the default there.
  Rng rng(99);
  geom::PointSet points(5);
  for (int i = 0; i < 200; ++i) {
    std::vector<double> p(5);
    for (auto& c : p) c = rng.uniform(0.0, 1.0);
    points.add(p);
  }
  DbscanParams params{.eps = 0.4, .min_pts = 4};
  DbscanResult auto_result = dbscan(points, params);
  params.index = DbscanIndex::kKdTree;
  DbscanResult kd_result = dbscan(points, params);
  params.index = DbscanIndex::kGrid;
  DbscanResult grid_result = dbscan(points, params);
  EXPECT_EQ(auto_result.labels, kd_result.labels);
  EXPECT_EQ(grid_result.labels, kd_result.labels);
}

TEST(DbscanTest, AutoIndexFallsBackOnHugeExtents) {
  // A spread that would blow the cell budget is vetoed up front; the result
  // still matches the pinned kd-tree engine.
  geom::PointSet points(2);
  points.add(std::vector<double>{0.0, 0.0});
  points.add(std::vector<double>{1e9, 1e9});
  for (int i = 0; i < 10; ++i)
    points.add(std::vector<double>{0.001 * i, 0.0});
  DbscanParams params{.eps = 0.01, .min_pts = 3};
  DbscanResult auto_result = dbscan(points, params);
  params.index = DbscanIndex::kKdTree;
  EXPECT_EQ(auto_result.labels, dbscan(points, params).labels);
  // Pinning the grid engine skips the auto veto, so the same spread must
  // fail loudly in the index build rather than overflow its cell table.
  params.index = DbscanIndex::kGrid;
  EXPECT_THROW(dbscan(points, params), PreconditionError);
}

}  // namespace
}  // namespace perftrack::cluster
