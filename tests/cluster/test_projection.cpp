#include "cluster/projection.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "testing/test_traces.hpp"

namespace perftrack::cluster {
namespace {

using testing::MiniTraceSpec;
using testing::make_mini_trace;

MiniTraceSpec two_phase_spec() {
  MiniTraceSpec spec;
  spec.tasks = 2;
  spec.iterations = 3;
  spec.phases = {{1e6, 1.0}, {5e4, 2.0}};  // long and short phases
  return spec;
}

TEST(ProjectionTest, ProjectsAllBurstsByDefault) {
  auto trace = make_mini_trace(two_phase_spec());
  ProjectionParams params;
  Projection proj = project(*trace, params);
  EXPECT_EQ(proj.size(), trace->burst_count());
  EXPECT_EQ(proj.points.dims(), 2u);
  // First row is the first burst: (instructions, ipc).
  EXPECT_DOUBLE_EQ(proj.points[0][0], 1e6);
  EXPECT_DOUBLE_EQ(proj.points[0][1], 1.0);
  EXPECT_DOUBLE_EQ(proj.durations[0], trace->bursts()[0].duration);
}

TEST(ProjectionTest, MinDurationFilters) {
  auto trace = make_mini_trace(two_phase_spec());
  ProjectionParams params;
  // Long phase: 1e6/1.0/1e9 = 1 ms. Short: 5e4/2.0/1e9 = 25 us.
  params.min_duration = 1e-4;
  Projection proj = project(*trace, params);
  EXPECT_EQ(proj.size(), trace->burst_count() / 2);
  for (std::size_t row = 0; row < proj.size(); ++row)
    EXPECT_DOUBLE_EQ(proj.points[row][0], 1e6);
}

TEST(ProjectionTest, TimeCoverageFilterKeepsDominantBursts) {
  auto trace = make_mini_trace(two_phase_spec());
  ProjectionParams params;
  // The long phase carries ~97.6% of the time, so covering 90% only needs
  // the long bursts.
  params.time_coverage = 0.9;
  Projection proj = project(*trace, params);
  EXPECT_EQ(proj.size(), trace->burst_count() / 2);
}

TEST(ProjectionTest, CustomMetricAxes) {
  auto trace = make_mini_trace(two_phase_spec());
  ProjectionParams params;
  params.metrics = {trace::Metric::Duration};
  Projection proj = project(*trace, params);
  EXPECT_EQ(proj.points.dims(), 1u);
  EXPECT_DOUBLE_EQ(proj.points[0][0], trace->bursts()[0].duration);
}

TEST(ProjectionTest, RejectsEmptyMetrics) {
  auto trace = make_mini_trace(two_phase_spec());
  ProjectionParams params;
  params.metrics = {};
  EXPECT_THROW(project(*trace, params), PreconditionError);
}

TEST(DurationThreshold, CoversRequestedFraction) {
  auto trace = make_mini_trace(two_phase_spec());
  EXPECT_DOUBLE_EQ(duration_threshold_for_coverage(*trace, 0.0), 0.0);
  double threshold = duration_threshold_for_coverage(*trace, 0.5);
  double covered = 0.0, total = 0.0;
  for (const auto& b : trace->bursts()) {
    total += b.duration;
    if (b.duration >= threshold) covered += b.duration;
  }
  EXPECT_GE(covered, 0.5 * total);
  EXPECT_THROW(duration_threshold_for_coverage(*trace, 1.5),
               PreconditionError);
}

TEST(DurationThreshold, FullCoverageKeepsEverything) {
  auto trace = make_mini_trace(two_phase_spec());
  double threshold = duration_threshold_for_coverage(*trace, 1.0);
  for (const auto& b : trace->bursts()) EXPECT_GE(b.duration, threshold);
}

}  // namespace
}  // namespace perftrack::cluster
