// End-to-end integration: the ten Table 2 case studies through the full
// pipeline (simulate -> cluster -> track), pinning the paper's tracked
// region counts and coverage. These are the repository's ground-truth
// regression tests for the headline result.

#include <gtest/gtest.h>

#include "sim/studies.hpp"
#include "tracking/tracker.hpp"
#include "tracking/trends.hpp"

namespace perftrack {
namespace {

struct StudyExpectation {
  const char* name;
  sim::Study (*make)();
  std::size_t images;
  std::size_t tracked;
  double coverage;  // fraction
};

// Default-argument wrappers (function pointers cannot carry defaults).
sim::Study make_gadget() { return sim::study_gadget(); }
sim::Study make_espresso() { return sim::study_espresso(); }
sim::Study make_wrf() { return sim::study_wrf(); }
sim::Study make_gromacs_scaling() { return sim::study_gromacs_scaling(); }
sim::Study make_cgpop() { return sim::study_cgpop(); }
sim::Study make_nas_bt() { return sim::study_nas_bt(); }
sim::Study make_mrgenesis() { return sim::study_mrgenesis(); }
sim::Study make_nas_ft() { return sim::study_nas_ft(); }
sim::Study make_gromacs_evolution() {
  return sim::study_gromacs_evolution();
}
sim::Study make_hydroc12() { return sim::study_hydroc(12); }

class StudyEndToEnd : public ::testing::TestWithParam<StudyExpectation> {};

TEST_P(StudyEndToEnd, MatchesTable2) {
  const StudyExpectation& expected = GetParam();
  sim::Study study = expected.make();
  ASSERT_EQ(study.traces.size(), expected.images);
  tracking::TrackingResult result =
      tracking::track_frames(study.frames(), {});
  EXPECT_EQ(result.complete_count, expected.tracked) << expected.name;
  EXPECT_NEAR(result.coverage, expected.coverage, 0.02) << expected.name;
}

INSTANTIATE_TEST_SUITE_P(
    Table2, StudyEndToEnd,
    ::testing::Values(
        StudyExpectation{"Gadget", &make_gadget, 2, 8, 8.0 / 9.0},
        StudyExpectation{"QuantumESPRESSO", &make_espresso, 2, 6,
                         6.0 / 9.0},
        StudyExpectation{"WRF", &make_wrf, 2, 12, 1.0},
        StudyExpectation{"Gromacs", &make_gromacs_scaling, 3, 5, 1.0},
        StudyExpectation{"CGPOP", &make_cgpop, 4, 2, 2.0 / 3.0},
        StudyExpectation{"NAS-BT", &make_nas_bt, 4, 6, 1.0},
        StudyExpectation{"HydroC", &make_hydroc12, 12, 2, 1.0},
        StudyExpectation{"MR-Genesis", &make_mrgenesis, 12, 2, 1.0},
        StudyExpectation{"NAS-FT", &make_nas_ft, 15, 2, 1.0},
        StudyExpectation{"Gromacs-evolution", &make_gromacs_evolution,
                         20, 4, 0.8}),
    [](const ::testing::TestParamInfo<StudyExpectation>& info) {
      std::string name = info.param.name;
      for (char& c : name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return name;
    });

TEST(StudyDetails, ResultsAreSeedStable) {
  // A different seed offset is a fresh synthetic measurement run; the
  // Table 2 structure must not depend on the default seeds.
  sim::StudyOptions other_run;
  other_run.seed_offset = 31337;
  struct Case {
    sim::Study study;
    std::size_t tracked;
  };
  for (Case c : {Case{sim::study_cgpop(other_run), 2},
                 Case{sim::study_nas_bt(other_run), 6},
                 Case{sim::study_gadget(other_run), 8}}) {
    tracking::TrackingResult result =
        tracking::track_frames(c.study.frames(), {});
    EXPECT_EQ(result.complete_count, c.tracked) << c.study.name;
  }
}

TEST(StudyDetails, ModerateNoiseDoesNotBreakTracking) {
  sim::StudyOptions noisy;
  noisy.noise_scale = 1.5;
  sim::Study study = sim::study_nas_bt(noisy);
  tracking::TrackingResult result =
      tracking::track_frames(study.frames(), {});
  EXPECT_EQ(result.complete_count, 6u);
  EXPECT_DOUBLE_EQ(result.coverage, 1.0);
}

TEST(StudyDetails, WrfSplitRegionIsGroupedNotLost) {
  sim::Study study = sim::study_wrf();
  tracking::TrackingResult result =
      tracking::track_frames(study.frames(), {});
  // Exactly one pairwise relation is wide (the region-4 split), and the
  // 256-task frame's extra object belongs to it.
  ASSERT_EQ(result.pairs.size(), 1u);
  std::size_t wide = 0;
  for (const auto& rel : result.pairs[0].relations)
    if (!rel.univocal()) {
      ++wide;
      EXPECT_EQ(rel.left.size(), 1u);
      EXPECT_EQ(rel.right.size(), 2u);
    }
  EXPECT_EQ(wide, 1u);
}

TEST(StudyDetails, WrfTrendsMatchPaperDirections) {
  sim::Study study = sim::study_wrf();
  tracking::TrackingResult result =
      tracking::track_frames(study.frames(), {});
  int improved = 0, degraded = 0, stable = 0;
  bool region1_replicates = false;
  for (const auto& region : result.regions) {
    if (!region.complete) continue;
    auto ipc = tracking::region_metric_mean(result, region.id,
                                            trace::Metric::Ipc);
    double change = ipc.back() / ipc.front() - 1.0;
    if (change > 0.03) ++improved;
    else if (change < -0.03) ++degraded;
    else ++stable;
    if (region.id == 0) {
      auto totals = tracking::region_counter_total(
          result, region.id, trace::Counter::Instructions);
      double growth = totals.back() / totals.front() - 1.0;
      region1_replicates = growth > 0.03 && growth < 0.08;
    }
  }
  EXPECT_EQ(improved, 3);   // paper: regions 4, 6, 7 gain ~5%
  EXPECT_EQ(degraded, 2);   // paper: regions 11, 12 lose ~20%
  EXPECT_EQ(stable, 7);
  EXPECT_TRUE(region1_replicates);  // paper: ~+5% total instructions
}

TEST(StudyDetails, CgpopCompilerTradeoff) {
  sim::Study study = sim::study_cgpop();
  tracking::TrackingResult result =
      tracking::track_frames(study.frames(), {});
  ASSERT_GE(result.complete_count, 1u);
  const auto& region = result.regions.front();
  auto instr = tracking::region_metric_mean(result, region.id,
                                            trace::Metric::Instructions);
  auto ipc = tracking::region_metric_mean(result, region.id,
                                          trace::Metric::Ipc);
  auto duration = tracking::region_duration_total(result, region.id);
  // Frames: MN/gfortran, MN/xlf, MT/gfortran, MT/ifort.
  EXPECT_NEAR(instr[1] / instr[0], 0.64, 0.02);  // xlf: -36% instructions
  EXPECT_NEAR(ipc[1] / ipc[0], 0.64, 0.03);      // ... at -36% IPC
  EXPECT_NEAR(duration[1] / duration[0], 1.0, 0.02);  // time unchanged
  EXPECT_NEAR(instr[3] / instr[2], 0.70, 0.02);  // ifort: -30%
  // MinoTauro ~2.5x faster than MareNostrum (paper Table 3).
  EXPECT_NEAR(duration[0] / duration[2], 2.5, 0.35);
}

TEST(StudyDetails, NasBtIpcCollapsesWithL2Misses) {
  sim::Study study = sim::study_nas_bt();
  tracking::TrackingResult result =
      tracking::track_frames(study.frames(), {});
  int sharp_then_stable = 0, gradual = 0;
  for (const auto& region : result.regions) {
    if (!region.complete) continue;
    auto ipc = tracking::region_metric_mean(result, region.id,
                                            trace::Metric::Ipc);
    auto l2 = tracking::region_metric_mean(result, region.id,
                                           trace::Metric::L2MissesPerKi);
    double wa = ipc[1] / ipc[0] - 1.0;
    double bc = ipc[3] / ipc[2] - 1.0;
    if (wa < -0.40 && bc > -0.05) ++sharp_then_stable;
    if (wa > -0.25) ++gradual;
    // L2 misses rise monotonically with the class for every region.
    EXPECT_LT(l2[0], l2[3]);
  }
  EXPECT_EQ(sharp_then_stable, 4);  // paper regions 1, 2, 4, 5
  EXPECT_EQ(gradual, 2);            // paper regions 3, 6
}

TEST(StudyDetails, MrGenesisOccupancyCurve) {
  sim::Study study = sim::study_mrgenesis();
  tracking::TrackingResult result =
      tracking::track_frames(study.frames(), {});
  for (const auto& region : result.regions) {
    if (!region.complete) continue;
    auto ipc = tracking::region_metric_mean(result, region.id,
                                            trace::Metric::Ipc);
    auto instr = tracking::region_metric_mean(result, region.id,
                                              trace::Metric::Instructions);
    // Instructions constant: only the mapping changes.
    EXPECT_NEAR(instr.back() / instr.front(), 1.0, 0.02);
    // Gentle decline up to 8 tasks/node, sharp beyond, ~-17.5% total.
    for (std::size_t f = 1; f < 8; ++f)
      EXPECT_GT(ipc[f] / ipc[f - 1], 0.985);
    double total = ipc.back() / ipc.front() - 1.0;
    EXPECT_NEAR(total, -0.175, 0.04);
    double last_step = ipc[11] / ipc[10] - 1.0;
    EXPECT_LT(last_step, -0.05);
  }
}

TEST(StudyDetails, HydrocL1CapacityDip) {
  sim::Study study = sim::study_hydroc(9);
  tracking::TrackingResult result =
      tracking::track_frames(study.frames(), {});
  // Frame 4 -> 5 is the 64 -> 128 block step.
  for (const auto& region : result.regions) {
    if (!region.complete) continue;
    auto l1 = tracking::region_metric_mean(result, region.id,
                                           trace::Metric::L1MissesPerKi);
    double jump = l1[5] / l1[4] - 1.0;
    EXPECT_GT(jump, 0.25);  // paper: ~+40%
    EXPECT_LT(jump, 0.65);
    auto ipc = tracking::region_metric_mean(result, region.id,
                                            trace::Metric::Ipc);
    double total = ipc.back() / ipc.front() - 1.0;
    EXPECT_LT(total, -0.03);
    EXPECT_GT(total, -0.15);  // paper: -5% / -10%
  }
}

}  // namespace
}  // namespace perftrack
