// Standalone fuzz driver: a deterministic corpus mutator for toolchains
// without libFuzzer (-fsanitize=fuzzer is clang-only; this repo's CI image
// ships GCC). The goal is not coverage-guided search, just a large volume
// of structurally damaged inputs run under ASan/UBSan.
//
//   fuzz_ptt [-n ITERATIONS] [-s SEED] [extra seed files...]
//
// Exits non-zero only if the sanitizer aborts or the target throws a
// non-perftrack exception (targets catch perftrack::Error themselves).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz_driver.hpp"

namespace {

// xorshift64*: tiny, deterministic, seedable.
struct Rng {
  std::uint64_t state;
  explicit Rng(std::uint64_t seed) : state(seed ? seed : 0x9e3779b97f4a7c15ULL) {}
  std::uint64_t next() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545f4914f6cdd1dULL;
  }
  std::size_t below(std::size_t bound) {
    return bound == 0 ? 0 : static_cast<std::size_t>(next() % bound);
  }
};

using Input = std::vector<std::uint8_t>;

void mutate(Input& data, Rng& rng, const std::vector<Input>& corpus) {
  int rounds = 1 + static_cast<int>(rng.below(4));
  for (int r = 0; r < rounds; ++r) {
    switch (rng.below(7)) {
      case 0:  // flip a byte
        if (!data.empty()) data[rng.below(data.size())] ^=
            static_cast<std::uint8_t>(1 + rng.below(255));
        break;
      case 1:  // insert a random byte
        data.insert(data.begin() + static_cast<std::ptrdiff_t>(
                        rng.below(data.size() + 1)),
                    static_cast<std::uint8_t>(rng.below(256)));
        break;
      case 2:  // delete a byte
        if (!data.empty())
          data.erase(data.begin() +
                     static_cast<std::ptrdiff_t>(rng.below(data.size())));
        break;
      case 3:  // truncate
        if (!data.empty()) data.resize(rng.below(data.size()));
        break;
      case 4: {  // duplicate a block
        if (data.empty()) break;
        std::size_t begin = rng.below(data.size());
        std::size_t len = 1 + rng.below(data.size() - begin);
        Input block(data.begin() + static_cast<std::ptrdiff_t>(begin),
                    data.begin() + static_cast<std::ptrdiff_t>(begin + len));
        std::size_t at = rng.below(data.size() + 1);
        data.insert(data.begin() + static_cast<std::ptrdiff_t>(at),
                    block.begin(), block.end());
        break;
      }
      case 5: {  // splice with another corpus entry
        const Input& other = corpus[rng.below(corpus.size())];
        if (other.empty()) break;
        std::size_t cut = rng.below(data.size() + 1);
        std::size_t from = rng.below(other.size());
        data.resize(cut);
        data.insert(data.end(),
                    other.begin() + static_cast<std::ptrdiff_t>(from),
                    other.end());
        break;
      }
      case 6:  // overwrite with a digit/space/newline (keeps inputs texty)
        if (!data.empty())
          data[rng.below(data.size())] =
              static_cast<std::uint8_t>("0123456789 \n.-%"[rng.below(15)]);
        break;
    }
  }
  if (data.size() > 1 << 16) data.resize(1 << 16);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t iterations = 10000;
  std::uint64_t seed = 1;
  std::vector<Input> corpus;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-n") == 0 && i + 1 < argc) {
      iterations = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "-s") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::ifstream in(argv[i], std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "cannot read seed file %s\n", argv[i]);
        return 2;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      std::string text = buffer.str();
      corpus.emplace_back(text.begin(), text.end());
    }
  }
  for (const std::string& text : fuzz_seed_corpus())
    corpus.emplace_back(text.begin(), text.end());
  if (corpus.empty()) corpus.emplace_back();

  // Every seed runs unmutated first: crashes on the corpus itself must fail.
  for (const Input& input : corpus)
    LLVMFuzzerTestOneInput(input.data(), input.size());

  Rng rng(seed);
  for (std::uint64_t i = 0; i < iterations; ++i) {
    Input data = corpus[rng.below(corpus.size())];
    mutate(data, rng, corpus);
    LLVMFuzzerTestOneInput(data.data(), data.size());
    // Keep a rolling pool of mutants so damage compounds across iterations.
    if (rng.below(8) == 0) {
      if (corpus.size() < 64) corpus.push_back(std::move(data));
      else corpus[rng.below(corpus.size())] = std::move(data);
    }
  }
  std::printf("ran %llu iterations over %zu corpus entries\n",
              static_cast<unsigned long long>(iterations), corpus.size());
  return 0;
}
