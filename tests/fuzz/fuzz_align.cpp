// Differential fuzzer — banded Needleman–Wunsch vs the full dynamic
// program.
//
// The banded engine promises bit-identical output to the full DP —
// alignment rows, score, traceback tie-breaking, everything — certified
// per call by a score bound (align/nw.hpp). This target decodes two
// symbol sequences plus a scoring configuration from the fuzz bytes, runs
// both engines through both public overloads, and aborts on any
// divergence: a crash here is a broken identity certificate, not a parse
// error.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "align/nw.hpp"
#include "fuzz_driver.hpp"

namespace {

using perftrack::align::AlignmentEngine;
using perftrack::align::AlignmentScores;
using perftrack::align::PairAlignment;
using perftrack::align::Symbol;

/// Cursor over the fuzz bytes; everything derives from it deterministically.
struct Reader {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;

  std::uint8_t u8() { return pos < size ? data[pos++] : 0; }
};

std::vector<Symbol> read_sequence(Reader& r, std::size_t max_len,
                                  int alphabet) {
  const std::size_t len = r.u8() % (max_len + 1);
  std::vector<Symbol> seq;
  seq.reserve(len);
  for (std::size_t i = 0; i < len; ++i)
    seq.push_back(static_cast<Symbol>(r.u8() % alphabet));
  return seq;
}

bool same(const PairAlignment& x, const PairAlignment& y) {
  return x.a == y.a && x.b == y.b && x.score == y.score;
}

void check(bool ok, const char* what) {
  if (ok) return;
  std::fprintf(stderr, "fuzz_align: banded/full divergence: %s\n", what);
  std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  Reader r{data, size};

  // Alphabet small enough to make matches common (interesting tracebacks),
  // sequences long enough to exercise band widening and corridor contact.
  const int alphabet = 1 + r.u8() % 12;
  std::vector<Symbol> a = read_sequence(r, 96, alphabet);
  std::vector<Symbol> b = read_sequence(r, 96, alphabet);

  // Scores overload: derive a configuration that keeps the banded engine
  // eligible most of the time (gap < 0 and gap < match/2) but also wander
  // outside eligibility so the fallback path is exercised too.
  AlignmentScores scores;
  scores.match = 1.0 + (r.u8() % 8);
  scores.mismatch = -static_cast<double>(r.u8() % 4);
  scores.gap = -0.25 * (1 + r.u8() % 16);
  PairAlignment full =
      perftrack::align::needleman_wunsch(a, b, scores, AlignmentEngine::kFull);
  PairAlignment banded = perftrack::align::needleman_wunsch(
      a, b, scores, AlignmentEngine::kBanded);
  check(same(full, banded), "scores overload");

  // Custom pair-score overload (the evaluator_sequence shape): a small
  // score table over the alphabet with a sound per-cell upper bound.
  const double bonus = 0.5 * (r.u8() % 4);
  auto pair_score = [&](Symbol x, Symbol y) -> double {
    if (x == y) return 2.0 + bonus;
    return ((x + y) % 3 == 0) ? 0.5 : -1.5;
  };
  const double gap_penalty = -0.5 - 0.25 * (r.u8() % 8);
  PairAlignment full_custom = perftrack::align::needleman_wunsch(
      a, b, pair_score, gap_penalty, AlignmentEngine::kFull,
      /*max_pair_score=*/2.0 + bonus);
  PairAlignment banded_custom = perftrack::align::needleman_wunsch(
      a, b, pair_score, gap_penalty, AlignmentEngine::kBanded,
      /*max_pair_score=*/2.0 + bonus);
  check(same(full_custom, banded_custom), "custom score overload");

  return 0;
}

std::vector<std::string> fuzz_seed_corpus() {
  std::vector<std::string> seeds;

  // Identical mid-length ladders: the banded fast path.
  {
    std::string s;
    s.push_back(6);   // alphabet
    s.push_back(48);  // len a
    for (int i = 0; i < 48; ++i) s.push_back(static_cast<char>(i % 6));
    s.push_back(48);  // len b
    for (int i = 0; i < 48; ++i) s.push_back(static_cast<char>(i % 6));
    s += std::string(6, 2);  // scores + custom table bytes
    seeds.push_back(s);
  }
  // Shifted copy: forces the corridor against its boundary (widening).
  {
    std::string s;
    s.push_back(4);
    s.push_back(64);
    for (int i = 0; i < 64; ++i) s.push_back(static_cast<char>(i % 4));
    s.push_back(32);
    for (int i = 32; i < 64; ++i) s.push_back(static_cast<char>(i % 4));
    s += std::string(6, 5);
    seeds.push_back(s);
  }
  // Degenerate shapes: empty vs non-empty, single symbols.
  seeds.push_back(std::string("\x03\x00\x05\x01\x01\x01\x01\x01", 8));
  seeds.push_back(std::string("\x02\x01\x01\x01\x00", 5));
  seeds.push_back(std::string());
  return seeds;
}
