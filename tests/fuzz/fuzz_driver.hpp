#pragma once
// Shared contract between the fuzz targets and the standalone driver.
//
// Each target defines LLVMFuzzerTestOneInput (the libFuzzer entry point)
// plus fuzz_seed_corpus(), the inputs the standalone mutation driver starts
// from. Under clang the targets link against real libFuzzer and the seeds
// are simply unused; under GCC standalone_driver.cpp provides a main() with
// a deterministic mutator, so the harness runs under ASan/UBSan anywhere.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

/// Seed inputs for the standalone driver (valid and near-valid documents).
std::vector<std::string> fuzz_seed_corpus();
