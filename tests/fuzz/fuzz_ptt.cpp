// Fuzz target for the .ptt trace reader: arbitrary bytes through both the
// strict and the lenient parse paths. Any perftrack::Error is a correct
// rejection; anything else (sanitizer abort, std:: exception escaping the
// parser, crash) is a finding.

#include <sstream>
#include <string>

#include "common/diagnostics.hpp"
#include "common/error.hpp"
#include "fuzz_driver.hpp"
#include "trace/trace_io.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::string text(reinterpret_cast<const char*>(data), size);
  {
    std::istringstream in(text);
    try {
      perftrack::trace::read_trace(in);
    } catch (const perftrack::Error&) {
    }
  }
  {
    std::istringstream in(text);
    perftrack::Diagnostics diags = perftrack::Diagnostics::lenient();
    try {
      perftrack::trace::read_trace(in, diags);
    } catch (const perftrack::Error&) {
    }
  }
  return 0;
}

std::vector<std::string> fuzz_seed_corpus() {
  return {
      "#PTT 1\n"
      "app fuzz-app\n"
      "label fuzz\n"
      "tasks 2\n"
      "attr platform Reference\n"
      "callstack 1 10 solver.c compute kernel\n"
      "burst 0 0.0 0.1 1 1000 500 10 5 1\n"
      "burst 1 0.0 0.1 1 1000 500 10 5 1\n"
      "burst 0 0.2 0.1 1 1200 600 12 6 1\n",
      "#PTT 1\napp a\ntasks 1\nburst 0 zero 0.1 0 1 1 0 0 0\n",
      "#PTT 1\n# comment\n\ntasks 1\nburst 0 0 0.1 9 1 1 0 0 0\n",
      "not a trace at all\n",
      "",
  };
}
