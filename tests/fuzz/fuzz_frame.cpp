// Fuzz target for the frame store deserialiser: arbitrary bytes through
// decode_frame. A perftrack::Error (ParseError for corrupt entries) is a
// correct rejection; anything else — out-of-bounds read, giant allocation,
// std:: exception escaping, crash — is a finding. This is the adversarial
// counterpart of the cache's corruption-tolerant load path: a poisoned
// cache directory must never take the pipeline down.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/frame.hpp"
#include "common/error.hpp"
#include "fuzz_driver.hpp"
#include "store/frame_codec.hpp"
#include "testing/test_traces.hpp"
#include "trace/trace.hpp"

namespace {

std::shared_ptr<const perftrack::trace::Trace> fuzz_source() {
  static const auto source =
      std::make_shared<const perftrack::trace::Trace>("fuzz-app", 2);
  return source;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::string_view bytes(reinterpret_cast<const char*>(data), size);
  try {
    perftrack::store::decode_frame(bytes, fuzz_source());
  } catch (const perftrack::Error&) {
  }
  return 0;
}

std::vector<std::string> fuzz_seed_corpus() {
  using namespace perftrack;
  testing::MiniTraceSpec spec;
  spec.tasks = 2;
  spec.noise = 0.02;
  spec.phases = {testing::MiniPhase{8e6, 1.0, {"p1", "x.c", 1}},
                 testing::MiniPhase{1e6, 2.0, {"p2", "x.c", 2}}};
  cluster::ClusteringParams params;
  params.dbscan.eps = 0.08;
  params.dbscan.min_pts = 3;
  params.log_scale = {true, false};
  std::string valid = store::encode_frame(
      cluster::build_frame(testing::make_mini_trace(spec), params));

  std::string truncated = valid.substr(0, valid.size() / 2);
  std::string flipped = valid;
  flipped[flipped.size() / 3] ^= 0x40;
  return {valid, truncated, flipped, "PTF1", std::string(16, '\0'), ""};
}
