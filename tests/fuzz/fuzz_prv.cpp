// Fuzz target for the Paraver importer: the input is split at the first
// NUL byte into a .pcf part and a .prv part, and both the standalone PCF
// reader and the combined PRV+PCF reconstruction run over them, strict and
// lenient. perftrack::Error is a correct rejection; anything else is a
// finding.

#include <sstream>
#include <string>

#include "common/diagnostics.hpp"
#include "common/error.hpp"
#include "fuzz_driver.hpp"
#include "paraver/pcf.hpp"
#include "paraver/prv.hpp"

namespace {

void run_one(const std::string& pcf_text, const std::string& prv_text,
             bool lenient) {
  perftrack::Diagnostics diags = lenient
                                     ? perftrack::Diagnostics::lenient()
                                     : perftrack::Diagnostics::strict();
  {
    std::istringstream pcf(pcf_text);
    try {
      perftrack::paraver::read_pcf(pcf, diags);
    } catch (const perftrack::Error&) {
    }
  }
  {
    std::istringstream prv(prv_text);
    std::istringstream pcf(pcf_text);
    perftrack::Diagnostics prv_diags =
        lenient ? perftrack::Diagnostics::lenient()
                : perftrack::Diagnostics::strict();
    try {
      perftrack::paraver::detail::read_prv_streams(prv, pcf, prv_diags);
    } catch (const perftrack::Error&) {
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::string text(reinterpret_cast<const char*>(data), size);
  std::size_t cut = text.find('\0');
  std::string pcf_text =
      cut == std::string::npos ? std::string() : text.substr(0, cut);
  std::string prv_text =
      cut == std::string::npos ? text : text.substr(cut + 1);
  run_one(pcf_text, prv_text, /*lenient=*/false);
  run_one(pcf_text, prv_text, /*lenient=*/true);
  return 0;
}

std::vector<std::string> fuzz_seed_corpus() {
  // A NUL separates the .pcf part from the .prv part, mirroring the split
  // in LLVMFuzzerTestOneInput.
  std::string nul(1, '\0');
  return {
      "DEFAULT_OPTIONS\n"
      "APPLICATION fuzz-app\n"
      "EVENT_TYPE\n"
      "0 70000001 Caller at level 1\n"
      "VALUES\n"
      "1 compute (solver.c, 10)\n" +
          nul +
          "#Paraver (01/01/2024 at 00:00):1000_ns:1:1:1(2:1)\n"
          "1:1:1:1:1:0:100:1\n"
          "2:1:1:1:1:100:70000001:1\n"
          "1:2:1:1:2:0:100:1\n",
      nul + "#Paraver bad header\n",
      "VALUES\n1 f (g.c, 1)\n" + nul + "1:1:1:1:1:0:100:1\n",
      "",
  };
}
