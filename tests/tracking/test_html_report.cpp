#include "tracking/html_report.hpp"

#include <fstream>
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "testing/test_traces.hpp"

namespace perftrack::tracking {
namespace {

using perftrack::testing::MiniPhase;
using perftrack::testing::MiniTraceSpec;
using perftrack::testing::make_mini_trace;

TrackingResult sample_result() {
  cluster::ClusteringParams params;
  params.log_scale = {true, false};
  params.dbscan.eps = 0.05;
  params.dbscan.min_pts = 3;
  std::vector<cluster::Frame> frames;
  for (int i = 0; i < 3; ++i) {
    MiniTraceSpec spec;
    spec.label = "exp-" + std::to_string(i);
    spec.seed = 50 + static_cast<std::uint64_t>(i);
    spec.phases = {MiniPhase{8e6, 1.0, {"p1", "x.c", 1}},
                   MiniPhase{1e6, 2.0, {"p2", "x.c", 2}}};
    frames.push_back(cluster::build_frame(make_mini_trace(spec), params));
  }
  return track_frames(std::move(frames), {});
}

TEST(HtmlReportTest, ContainsStructureAndData) {
  TrackingResult result = sample_result();
  HtmlReportOptions options;
  options.title = "my tracking run";
  std::string page = html_report(result, options);
  EXPECT_NE(page.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(page.find("my tracking run"), std::string::npos);
  EXPECT_NE(page.find("\"label\":\"exp-0\""), std::string::npos);
  EXPECT_NE(page.find("\"label\":\"exp-2\""), std::string::npos);
  EXPECT_NE(page.find("\"coverage\":1.0"), std::string::npos);
  // One region entry per complete region.
  EXPECT_NE(page.find("\"id\":1"), std::string::npos);
  EXPECT_NE(page.find("\"id\":2"), std::string::npos);
  // No unresolved template keys (literal percent signs are fine).
  for (const char* key : {"%TITLE%", "%COMPLETE%", "%COVERAGE%", "%DATA%"})
    EXPECT_EQ(page.find(key), std::string::npos) << key;
}

TEST(HtmlReportTest, SubsamplingCapsPayload) {
  TrackingResult result = sample_result();
  HtmlReportOptions tiny;
  tiny.max_points_per_object = 2;
  HtmlReportOptions full;
  full.max_points_per_object = 0;
  std::string small = html_report(result, tiny);
  std::string big = html_report(result, full);
  EXPECT_LT(small.size(), big.size());
}

TEST(HtmlReportTest, SaveWritesFile) {
  TrackingResult result = sample_result();
  std::string path = ::testing::TempDir() + "/pt_report.html";
  save_html_report(path, result);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first_line;
  std::getline(in, first_line);
  EXPECT_EQ(first_line, "<!DOCTYPE html>");
  std::remove(path.c_str());
}

TEST(HtmlReportTest, SaveBadPathThrows) {
  TrackingResult result = sample_result();
  EXPECT_THROW(save_html_report("/nonexistent-xyz/report.html", result),
               IoError);
}

}  // namespace
}  // namespace perftrack::tracking
