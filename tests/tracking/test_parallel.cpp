// Determinism of the parallel pipeline: any thread count must produce
// results identical to the serial run, because outputs land in pre-sized
// slots and every stage's work is independent per frame / per pair.

#include <gtest/gtest.h>

#include "common/thread_pool.hpp"
#include "sim/studies.hpp"
#include "testing/test_traces.hpp"
#include "tracking/evaluator_displacement.hpp"
#include "tracking/pipeline.hpp"
#include "tracking/report.hpp"
#include "tracking/tracker.hpp"

namespace perftrack::tracking {
namespace {

using perftrack::testing::MiniPhase;
using perftrack::testing::MiniTraceSpec;
using perftrack::testing::make_mini_trace;

void expect_identical(const TrackingResult& serial,
                      const TrackingResult& parallel,
                      const std::string& what) {
  EXPECT_EQ(describe_tracking(serial), describe_tracking(parallel)) << what;
  EXPECT_EQ(serial.regions.size(), parallel.regions.size()) << what;
  EXPECT_EQ(serial.complete_count, parallel.complete_count) << what;
  EXPECT_DOUBLE_EQ(serial.coverage, parallel.coverage) << what;
  EXPECT_EQ(serial.renaming, parallel.renaming) << what;
  ASSERT_EQ(serial.pairs.size(), parallel.pairs.size()) << what;
  for (std::size_t p = 0; p < serial.pairs.size(); ++p) {
    EXPECT_EQ(serial.pairs[p].relations.size(),
              parallel.pairs[p].relations.size())
        << what << " pair " << p;
  }
}

TEST(ParallelTrackingTest, StudiesMatchSerialForAnyThreadCount) {
  for (const sim::Study& study :
       {sim::study_nas_bt(), sim::study_gromacs_scaling(),
        sim::study_hydroc(4)}) {
    TrackingParams serial_params;
    serial_params.threads = 1;
    TrackingResult serial = track_frames(study.frames(), serial_params);
    for (std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
      TrackingParams params;
      params.threads = threads;
      TrackingResult parallel = track_frames(study.frames(), params);
      expect_identical(serial, parallel,
                       study.name + " threads=" + std::to_string(threads));
    }
  }
}

TEST(ParallelDisplacementTest, PooledClassificationMatchesSerialBitwise) {
  // The chunked sweep folds per-chunk integer counts in chunk order, so
  // any pool size must reproduce the serial matrices bit for bit — for
  // both engines, on every adjacent pair of a real study.
  std::vector<cluster::Frame> frames = sim::study_nas_bt().frames();
  ScaleNormalization scale = ScaleNormalization::fit(
      frames, tracking_log_scale(TrackingParams{}, frames[0]));
  for (DisplacementIndex index :
       {DisplacementIndex::kKdTree, DisplacementIndex::kGrid}) {
    std::vector<std::unique_ptr<FrameCloud>> clouds;
    for (const cluster::Frame& f : frames)
      clouds.push_back(std::make_unique<FrameCloud>(f, scale, index));
    for (std::size_t p = 0; p + 1 < frames.size(); ++p) {
      DisplacementResult serial = evaluate_displacement(
          frames[p], *clouds[p], frames[p + 1], *clouds[p + 1], 0.05);
      for (std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
        ThreadPool pool(threads);
        DisplacementResult pooled =
            evaluate_displacement(frames[p], *clouds[p], frames[p + 1],
                                  *clouds[p + 1], 0.05, &pool);
        EXPECT_TRUE(serial.a_to_b == pooled.a_to_b)
            << "pair " << p << " threads " << threads;
        EXPECT_TRUE(serial.b_to_a == pooled.b_to_a)
            << "pair " << p << " threads " << threads;
      }
    }
  }
}

std::shared_ptr<const trace::Trace> experiment(const std::string& label,
                                               std::uint64_t seed) {
  MiniTraceSpec spec;
  spec.label = label;
  spec.seed = seed;
  spec.phases = {MiniPhase{8e6, 1.0, {"p1", "x.c", 1}},
                 MiniPhase{1e6, 2.0, {"p2", "x.c", 2}}};
  return make_mini_trace(spec);
}

TrackingResult run_pipeline(std::size_t threads) {
  TrackingPipeline pipeline;
  for (int i = 0; i < 6; ++i)
    pipeline.add_experiment(
        experiment(std::string(1, static_cast<char>('A' + i)),
                   static_cast<std::uint64_t>(i + 1)));
  SessionConfig config = pipeline.config();
  config.clustering.dbscan.eps = 0.05;
  config.clustering.dbscan.min_pts = 3;
  config.tracking.threads = threads;
  pipeline.set_config(config);
  return pipeline.run();
}

TEST(ParallelTrackingTest, PipelineClusteringMatchesSerial) {
  TrackingResult serial = run_pipeline(1);
  TrackingResult parallel = run_pipeline(4);
  ASSERT_EQ(serial.frames.size(), parallel.frames.size());
  for (std::size_t f = 0; f < serial.frames.size(); ++f) {
    EXPECT_EQ(serial.frames[f].label(), parallel.frames[f].label());
    EXPECT_EQ(serial.frames[f].labels(), parallel.frames[f].labels());
  }
  expect_identical(serial, parallel, "pipeline threads=4");
}

TEST(ParallelTrackingTest, ThreadCountZeroMeansAuto) {
  TrackingResult serial = run_pipeline(1);
  TrackingResult any = run_pipeline(0);  // hardware concurrency
  expect_identical(serial, any, "pipeline threads=0");
}

}  // namespace
}  // namespace perftrack::tracking
