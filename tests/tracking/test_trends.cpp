#include "tracking/trends.hpp"

#include <gtest/gtest.h>

#include "testing/test_traces.hpp"
#include "tracking/report.hpp"

namespace perftrack::tracking {
namespace {

using perftrack::testing::MiniPhase;
using perftrack::testing::MiniTraceSpec;
using perftrack::testing::make_mini_trace;

cluster::ClusteringParams clustering() {
  cluster::ClusteringParams params;
  params.log_scale = {true, false};
  params.dbscan.eps = 0.05;
  params.dbscan.min_pts = 3;
  return params;
}

/// Two frames where the heavy phase's IPC drops from 1.0 to 0.8 and the
/// light phase is unchanged.
TrackingResult tracked_pair() {
  MiniTraceSpec a;
  a.label = "A";
  a.tasks = 4;
  a.iterations = 5;
  a.phases = {MiniPhase{8e6, 1.0, {"p1", "x.c", 1}},
              MiniPhase{1e6, 2.0, {"p2", "x.c", 2}}};
  MiniTraceSpec b = a;
  b.label = "B";
  b.phases[0].ipc = 0.8;
  std::vector<cluster::Frame> frames{
      cluster::build_frame(make_mini_trace(a), clustering()),
      cluster::build_frame(make_mini_trace(b), clustering())};
  return track_frames(std::move(frames), {});
}

TEST(TrendsTest, MetricMeansMatchModel) {
  TrackingResult result = tracked_pair();
  ASSERT_EQ(result.complete_count, 2u);
  auto ipc = region_metric_mean(result, 0, trace::Metric::Ipc);
  ASSERT_EQ(ipc.size(), 2u);
  EXPECT_NEAR(ipc[0], 1.0, 1e-9);
  EXPECT_NEAR(ipc[1], 0.8, 1e-9);
  auto instr = region_metric_mean(result, 0, trace::Metric::Instructions);
  EXPECT_NEAR(instr[0], 8e6, 1.0);
  EXPECT_NEAR(instr[1], 8e6, 1.0);
}

TEST(TrendsTest, CounterTotalsAggregateAllBursts) {
  TrackingResult result = tracked_pair();
  auto totals = region_counter_total(result, 0,
                                     trace::Counter::Instructions);
  // 4 tasks x 5 iterations x 8e6.
  EXPECT_NEAR(totals[0], 4.0 * 5.0 * 8e6, 1.0);
  EXPECT_NEAR(totals[1], totals[0], 1.0);
}

TEST(TrendsTest, DurationTotalsReflectIpcLoss) {
  TrackingResult result = tracked_pair();
  auto duration = region_duration_total(result, 0);
  // Same instructions at 0.8x IPC -> 1.25x duration.
  EXPECT_NEAR(duration[1] / duration[0], 1.25, 1e-9);
}

TEST(TrendsTest, BurstCounts) {
  TrackingResult result = tracked_pair();
  auto counts = region_burst_count(result, 0);
  EXPECT_EQ(counts[0], 20u);
  EXPECT_EQ(counts[1], 20u);
}

TEST(TrendsTest, RelativeHelpers) {
  std::vector<double> series{2.0, 1.0, 4.0};
  auto first = relative_to_first(series);
  EXPECT_DOUBLE_EQ(first[0], 1.0);
  EXPECT_DOUBLE_EQ(first[1], 0.5);
  EXPECT_DOUBLE_EQ(first[2], 2.0);
  auto peak = relative_to_max(series);
  EXPECT_DOUBLE_EQ(peak[2], 1.0);
  EXPECT_DOUBLE_EQ(peak[1], 0.25);
  EXPECT_DOUBLE_EQ(max_relative_variation(series), 1.0);
  EXPECT_DOUBLE_EQ(max_relative_variation({}), 0.0);
  EXPECT_DOUBLE_EQ(max_relative_variation({0.0, 1.0}), 0.0);
}

TEST(ReportTest, TrendTableHasOneRowPerCompleteRegion) {
  TrackingResult result = tracked_pair();
  Table table = trend_table(result, trace::Metric::Ipc);
  EXPECT_EQ(table.row_count(), result.complete_count);
  EXPECT_EQ(table.column_count(), 2u + result.frames.size());
}

TEST(ReportTest, TrendChartRendersSeries) {
  std::vector<TrendSeries> series{{"R1", {1.0, 0.8}}, {"R2", {2.0, 2.0}}};
  std::string chart = trend_chart(series, {"A", "B"});
  EXPECT_NE(chart.find('1'), std::string::npos);
  EXPECT_NE(chart.find('2'), std::string::npos);
  EXPECT_NE(chart.find("R1"), std::string::npos);
  EXPECT_NE(chart.find("A"), std::string::npos);
}

TEST(ReportTest, TrendChartHandlesEmptyAndConstant) {
  EXPECT_NE(trend_chart({}, {}).find("no series"), std::string::npos);
  std::vector<TrendSeries> flat{{"R1", {1.0, 1.0, 1.0}}};
  EXPECT_FALSE(trend_chart(flat, {"a", "b", "c"}).empty());
}

TEST(ReportTest, TrendsCsvHasRegionRows) {
  TrackingResult result = tracked_pair();
  std::string csv = trends_csv(result);
  // header + 2 regions x 2 frames.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 5);
  EXPECT_NE(csv.find("ipc"), std::string::npos);
}

TEST(ReportTest, DescribeTrackingMentionsCoverage) {
  TrackingResult result = tracked_pair();
  std::string text = describe_tracking(result);
  EXPECT_NE(text.find("coverage 100%"), std::string::npos);
  EXPECT_NE(text.find("Region 1"), std::string::npos);
}

TEST(ReportTest, TrackedScattersRenderEveryFrame) {
  TrackingResult result = tracked_pair();
  std::string art = tracked_scatters(result, 40, 8);
  EXPECT_NE(art.find("A"), std::string::npos);
  EXPECT_NE(art.find("B"), std::string::npos);
}

}  // namespace
}  // namespace perftrack::tracking
