#include "tracking/prediction.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "testing/test_traces.hpp"

namespace perftrack::tracking {
namespace {

using perftrack::testing::MiniPhase;
using perftrack::testing::MiniTraceSpec;
using perftrack::testing::make_mini_trace;

TEST(TrendModelTest, LinearFitRecoversLine) {
  std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  std::vector<double> y{3.0, 5.0, 7.0, 9.0};  // y = 1 + 2x
  TrendModel model = fit_linear(x, y);
  EXPECT_NEAR(model.a, 1.0, 1e-9);
  EXPECT_NEAR(model.b, 2.0, 1e-9);
  EXPECT_NEAR(model.r_squared, 1.0, 1e-9);
  EXPECT_NEAR(model.predict(10.0), 21.0, 1e-9);
}

TEST(TrendModelTest, PowerLawFitRecoversStrongScaling) {
  // y = 6.4e7 / x — per-task instructions under strong scaling.
  std::vector<double> x{16.0, 32.0, 64.0, 128.0};
  std::vector<double> y;
  for (double v : x) y.push_back(6.4e7 / v);
  TrendModel model = fit_power_law(x, y);
  EXPECT_NEAR(model.b, -1.0, 1e-9);
  EXPECT_NEAR(model.a, 6.4e7, 1.0);
  EXPECT_NEAR(model.predict(256.0), 2.5e5, 1.0);
}

TEST(TrendModelTest, FitTrendPicksTheBetterShape) {
  std::vector<double> x{1.0, 2.0, 4.0, 8.0};
  // Not a line: y = x^0.5.
  std::vector<double> power_y;
  for (double v : x) power_y.push_back(std::sqrt(v));
  EXPECT_EQ(fit_trend(x, power_y).kind, TrendModel::Kind::PowerLaw);
  // A perfect line (with an offset, so no power law matches exactly).
  std::vector<double> linear_y{3.0, 5.0, 9.0, 17.0};  // y = 1 + 2x
  TrendModel linear = fit_trend(x, linear_y);
  EXPECT_EQ(linear.kind, TrendModel::Kind::Linear);
  EXPECT_NEAR(linear.predict(16.0), 33.0, 1e-9);
}

TEST(TrendModelTest, FitTrendFallsBackToLinearOnNonPositiveData) {
  std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<double> y{-1.0, 0.0, 1.0};
  TrendModel model = fit_trend(x, y);
  EXPECT_EQ(model.kind, TrendModel::Kind::Linear);
}

TEST(TrendModelTest, TwoPointTieGoesToPowerLaw) {
  // With two samples both fits are exact; the power law must win because
  // it stays positive under extrapolation (a line through two strong-
  // scaling points goes negative).
  std::vector<double> x{32.0, 64.0};
  std::vector<double> y{2e6, 1e6};
  TrendModel model = fit_trend(x, y);
  EXPECT_EQ(model.kind, TrendModel::Kind::PowerLaw);
  EXPECT_NEAR(model.predict(128.0), 5e5, 1.0);
  EXPECT_GT(model.predict(1024.0), 0.0);
}

TEST(TrendModelTest, ConstantXGivesFlatModel) {
  std::vector<double> x{2.0, 2.0, 2.0};
  std::vector<double> y{1.0, 2.0, 3.0};
  TrendModel model = fit_linear(x, y);
  EXPECT_DOUBLE_EQ(model.b, 0.0);
  EXPECT_DOUBLE_EQ(model.predict(5.0), 2.0);
}

TEST(TrendModelTest, Validation) {
  std::vector<double> one{1.0};
  EXPECT_THROW(fit_linear(one, one), PreconditionError);
  std::vector<double> x{1.0, 2.0};
  std::vector<double> bad{0.0, 1.0};
  EXPECT_THROW(fit_power_law(x, bad), PreconditionError);
  TrendModel power;
  power.kind = TrendModel::Kind::PowerLaw;
  power.a = 1.0;
  power.b = 1.0;
  EXPECT_THROW(power.predict(-1.0), PreconditionError);
}

TEST(TrendModelTest, DescribeMentionsShapeAndR2) {
  std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<double> y{2.0, 4.0, 6.0};
  EXPECT_NE(fit_linear(x, y).describe().find("R2"), std::string::npos);
}

TEST(ForecastTest, PredictsHeldOutExperiment) {
  // Strong-scaling sweep at 4, 8, 16 tasks; forecast 32 and compare with
  // the actual simulation.
  auto experiment = [](std::uint32_t tasks) {
    MiniTraceSpec spec;
    spec.label = std::to_string(tasks) + " tasks";
    spec.tasks = tasks;
    spec.phases = {
        MiniPhase{64e6 / tasks, 1.0, {"p1", "x.c", 1}},
        MiniPhase{8e6 / tasks, 2.0, {"p2", "x.c", 2}},
    };
    return make_mini_trace(spec);
  };
  cluster::ClusteringParams params;
  params.log_scale = {true, false};
  params.dbscan.eps = 0.05;
  params.dbscan.min_pts = 3;
  std::vector<cluster::Frame> frames;
  for (std::uint32_t tasks : {4u, 8u, 16u})
    frames.push_back(cluster::build_frame(experiment(tasks), params));
  TrackingResult result = track_frames(std::move(frames), {});
  ASSERT_EQ(result.complete_count, 2u);

  std::vector<double> x{4.0, 8.0, 16.0};
  auto forecasts = forecast_regions(result, x,
                                    trace::Metric::Instructions, 32.0);
  ASSERT_EQ(forecasts.size(), 2u);
  for (const RegionForecast& forecast : forecasts) {
    EXPECT_EQ(forecast.model.kind, TrendModel::Kind::PowerLaw);
    EXPECT_NEAR(forecast.model.b, -1.0, 0.02);
  }
  // Region 0 is the heavy phase: 64e6/32 = 2e6 per burst at 32 tasks.
  EXPECT_NEAR(forecasts[0].predicted, 2e6, 2e6 * 0.03);
}

TEST(ForecastTest, RequiresOneXPerFrame) {
  auto experiment = [](std::uint32_t tasks, const char* label) {
    MiniTraceSpec spec;
    spec.label = label;
    spec.tasks = tasks;
    spec.phases = {MiniPhase{1e6, 1.0, {"p", "x.c", 1}}};
    return make_mini_trace(spec);
  };
  cluster::ClusteringParams params;
  params.log_scale = {true, false};
  params.dbscan.eps = 0.05;
  params.dbscan.min_pts = 3;
  std::vector<cluster::Frame> frames{
      cluster::build_frame(experiment(4, "a"), params),
      cluster::build_frame(experiment(4, "b"), params)};
  TrackingResult result = track_frames(std::move(frames), {});
  std::vector<double> wrong{1.0};
  EXPECT_THROW(
      forecast_regions(result, wrong, trace::Metric::Ipc, 2.0),
      PreconditionError);
}

}  // namespace
}  // namespace perftrack::tracking
