// The paper (§2): "While the experiments described hereafter define these
// two dimensions, the whole process can be likewise applied to any
// arbitrary number of dimensions." These tests run the full pipeline in a
// 3-D metric space (Instructions x IPC x L2 misses/Ki) and a 1-D space.

#include <cmath>
#include <gtest/gtest.h>

#include "sim/apps/apps.hpp"
#include "tracking/pipeline.hpp"

namespace perftrack::tracking {
namespace {

cluster::ClusteringParams three_axis_params() {
  cluster::ClusteringParams params;
  params.projection.metrics = {trace::Metric::Instructions,
                               trace::Metric::Ipc,
                               trace::Metric::L2MissesPerKi};
  params.log_scale = {true, false, false};
  params.dbscan.eps = 0.04;
  params.dbscan.min_pts = 5;
  params.min_cluster_time_fraction = 0.005;
  return params;
}

TEST(MultiDimTracking, ThreeMetricSpaceTracksNasBt) {
  sim::AppModel app = sim::make_nas_bt();
  TrackingPipeline pipeline;
  for (double scale : {1.0, 4.0, 16.0}) {
    sim::Scenario scenario;
    scenario.label = "scale " + std::to_string(scale);
    scenario.num_tasks = 16;
    scenario.problem_scale = scale;
    scenario.platform = sim::marenostrum();
    scenario.seed = 600 + static_cast<std::uint64_t>(scale);
    pipeline.add_experiment(app.simulate_shared(scenario));
  }
  SessionConfig config;
  config.clustering = three_axis_params();
  pipeline.set_config(config);
  TrackingResult result = pipeline.run();
  // The six regions stay identifiable and tracked in 3-D as well.
  for (const auto& frame : result.frames)
    EXPECT_EQ(frame.object_count(), 6u) << frame.label();
  EXPECT_EQ(result.complete_count, 6u);
  EXPECT_DOUBLE_EQ(result.coverage, 1.0);
  EXPECT_EQ(result.scale.dims(), 3u);
  EXPECT_TRUE(result.scale.task_weighted(0));
  EXPECT_FALSE(result.scale.task_weighted(2));
}

TEST(MultiDimTracking, SingleMetricSpaceStillWorks) {
  // A 1-D space (instructions only) can separate regions with distinct
  // instruction counts and track them.
  sim::AppModel app = sim::make_nas_ft();
  TrackingPipeline pipeline;
  for (int i = 0; i < 3; ++i) {
    sim::Scenario scenario;
    scenario.label = "step " + std::to_string(i);
    scenario.num_tasks = 16;
    scenario.problem_scale = std::pow(1.25, i);
    scenario.platform = sim::minotauro();
    scenario.seed = 700 + static_cast<std::uint64_t>(i);
    pipeline.add_experiment(app.simulate_shared(scenario));
  }
  SessionConfig config;
  config.clustering.projection.metrics = {trace::Metric::Instructions};
  config.clustering.log_scale = {true};
  config.clustering.dbscan.eps = 0.05;
  config.clustering.dbscan.min_pts = 5;
  pipeline.set_config(config);
  TrackingResult result = pipeline.run();
  EXPECT_EQ(result.complete_count, 2u);
  EXPECT_DOUBLE_EQ(result.coverage, 1.0);
}

}  // namespace
}  // namespace perftrack::tracking
