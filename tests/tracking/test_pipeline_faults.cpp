// Degraded-mode pipeline tests: failpoint-poisoned experiments become gaps
// in lenient mode, the tracker bridges them, and the surviving sequence
// matches a clean run over the same surviving experiments.

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "testing/test_traces.hpp"
#include "tracking/pipeline.hpp"
#include "tracking/report.hpp"

namespace perftrack::tracking {
namespace {

using perftrack::testing::MiniPhase;
using perftrack::testing::MiniTraceSpec;
using perftrack::testing::make_mini_trace;

std::shared_ptr<const trace::Trace> experiment(const std::string& label,
                                               std::uint64_t seed) {
  MiniTraceSpec spec;
  spec.label = label;
  spec.seed = seed;
  spec.phases = {MiniPhase{8e6, 1.0, {"p1", "x.c", 1}},
                 MiniPhase{1e6, 2.0, {"p2", "x.c", 2}}};
  return make_mini_trace(spec);
}

SessionConfig test_config(bool lenient = false) {
  SessionConfig config;
  config.clustering.dbscan.eps = 0.05;
  config.clustering.dbscan.min_pts = 3;
  config.resilience.lenient = lenient;
  return config;
}

class PipelineFaultTest : public ::testing::Test {
protected:
  void SetUp() override { failpoint::clear(); }
  void TearDown() override { failpoint::clear(); }
};

TEST_F(PipelineFaultTest, PoisonedExperimentsBecomeGaps) {
  // A 10-frame sequence with experiments 3 and 7 (1-based) poisoned: the
  // lenient run must complete with 8 frames and 2 reported gaps.
  TrackingPipeline pipeline;
  for (int i = 0; i < 10; ++i)
    pipeline.add_experiment(
        experiment("E" + std::to_string(i), static_cast<std::uint64_t>(i + 1)));
  pipeline.set_config(test_config(/*lenient=*/true));

  failpoint::activate("cluster_experiment", "@3,7");
  TrackingResult result = pipeline.run();

  EXPECT_EQ(result.frames.size(), 8u);
  EXPECT_EQ(result.sequence_length(), 10u);
  EXPECT_TRUE(result.degraded());
  ASSERT_EQ(result.gaps.size(), 2u);
  EXPECT_EQ(result.gaps[0].slot, 2u);
  EXPECT_EQ(result.gaps[0].label, "E2");
  EXPECT_EQ(result.gaps[1].slot, 6u);
  EXPECT_EQ(result.gaps[1].label, "E6");
  EXPECT_NE(result.gaps[0].reason.find("injected fault"), std::string::npos);

  // The gap is bridged: the surviving neighbours are adjacent frames.
  EXPECT_EQ(result.frames[1].label(), "E1");
  EXPECT_EQ(result.frames[2].label(), "E3");
  EXPECT_EQ(result.pairs.size(), result.frames.size() - 1);

  // Effective coverage discounts by the surviving fraction.
  EXPECT_NEAR(result.effective_coverage(), result.coverage * 0.8, 1e-12);

  // The report renders the degradation.
  std::string report = describe_tracking(result);
  EXPECT_NE(report.find("degraded sequence: 8 of 10"), std::string::npos);
  EXPECT_NE(report.find("gap at slot 3: E2"), std::string::npos);
  EXPECT_NE(report.find("gap at slot 7: E6"), std::string::npos);
}

TEST_F(PipelineFaultTest, SurvivingFramesMatchNoFaultRun) {
  // Tracked regions over the surviving frames must match a clean run fed
  // only the surviving experiments.
  std::vector<std::shared_ptr<const trace::Trace>> all;
  for (int i = 0; i < 10; ++i)
    all.push_back(
        experiment("E" + std::to_string(i), static_cast<std::uint64_t>(i + 1)));

  TrackingPipeline faulty;
  for (const auto& t : all) faulty.add_experiment(t);
  faulty.set_config(test_config(/*lenient=*/true));
  failpoint::activate("cluster_experiment", "@3,7");
  TrackingResult degraded = faulty.run();
  failpoint::clear();

  TrackingPipeline clean;
  for (std::size_t i = 0; i < all.size(); ++i)
    if (i != 2 && i != 6) clean.add_experiment(all[i]);
  clean.set_config(test_config());
  TrackingResult expected = clean.run();

  ASSERT_EQ(degraded.frames.size(), expected.frames.size());
  for (std::size_t f = 0; f < expected.frames.size(); ++f) {
    EXPECT_EQ(degraded.frames[f].label(), expected.frames[f].label());
    EXPECT_EQ(degraded.renaming[f], expected.renaming[f]);
  }
  EXPECT_EQ(degraded.complete_count, expected.complete_count);
  EXPECT_DOUBLE_EQ(degraded.coverage, expected.coverage);
  ASSERT_EQ(degraded.regions.size(), expected.regions.size());
  for (std::size_t r = 0; r < expected.regions.size(); ++r)
    EXPECT_EQ(degraded.regions[r].members, expected.regions[r].members);
}

TEST_F(PipelineFaultTest, StrictModePropagatesInjectedFault) {
  TrackingPipeline pipeline;
  for (int i = 0; i < 4; ++i)
    pipeline.add_experiment(
        experiment("E" + std::to_string(i), static_cast<std::uint64_t>(i + 1)));
  pipeline.set_config(test_config());
  failpoint::activate("cluster_experiment", "@2");
  EXPECT_THROW(pipeline.run(), InjectedFault);
}

TEST_F(PipelineFaultTest, GapBudgetExhaustionThrows) {
  TrackingPipeline pipeline;
  for (int i = 0; i < 4; ++i)
    pipeline.add_experiment(
        experiment("E" + std::to_string(i), static_cast<std::uint64_t>(i + 1)));
  SessionConfig config = test_config(/*lenient=*/true);
  config.resilience.max_gap_fraction = 0.5;
  pipeline.set_config(config);
  failpoint::activate("cluster_experiment", "@1,2,3");
  try {
    pipeline.run();
    FAIL() << "expected gap budget exhaustion";
  } catch (const Error& error) {
    EXPECT_NE(std::string(error.what()).find("gap budget"),
              std::string::npos);
  }
}

TEST_F(PipelineFaultTest, PreDeclaredGapsCountAndReport) {
  // add_gap slots (e.g. unreadable files) behave like clustering failures.
  TrackingPipeline pipeline;
  pipeline.add_experiment(experiment("A", 1));
  pipeline.add_gap("missing.ptt", "cannot open for reading");
  pipeline.add_experiment(experiment("B", 2));
  pipeline.add_experiment(experiment("C", 3));
  pipeline.set_config(test_config(/*lenient=*/true));

  EXPECT_EQ(pipeline.experiment_count(), 4u);
  EXPECT_EQ(pipeline.gap_count(), 1u);
  TrackingResult result = pipeline.run();
  EXPECT_EQ(result.frames.size(), 3u);
  ASSERT_EQ(result.gaps.size(), 1u);
  EXPECT_EQ(result.gaps[0].slot, 1u);
  EXPECT_EQ(result.gaps[0].label, "missing.ptt");
  EXPECT_EQ(result.gaps[0].reason, "cannot open for reading");
}

TEST_F(PipelineFaultTest, StrictModeRejectsPreDeclaredGaps) {
  // Without lenient resilience a pre-declared gap must not silently shrink
  // the sequence.
  TrackingPipeline pipeline;
  pipeline.add_experiment(experiment("A", 1));
  pipeline.add_gap("missing.ptt", "cannot open for reading");
  pipeline.add_experiment(experiment("B", 2));
  pipeline.set_config(test_config());
  EXPECT_THROW(pipeline.run(), Error);
}

}  // namespace
}  // namespace perftrack::tracking
