#include "tracking/gnuplot.hpp"

#include <fstream>
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "testing/test_traces.hpp"

namespace perftrack::tracking {
namespace {

using perftrack::testing::MiniPhase;
using perftrack::testing::MiniTraceSpec;
using perftrack::testing::make_mini_trace;

TrackingResult sample_result() {
  cluster::ClusteringParams params;
  params.log_scale = {true, false};
  params.dbscan.eps = 0.05;
  params.dbscan.min_pts = 3;
  std::vector<cluster::Frame> frames;
  for (int i = 0; i < 2; ++i) {
    MiniTraceSpec spec;
    spec.label = "run-" + std::to_string(i);
    spec.seed = 70 + static_cast<std::uint64_t>(i);
    spec.phases = {MiniPhase{8e6, 1.0, {"p1", "x.c", 1}},
                   MiniPhase{1e6, 2.0, {"p2", "x.c", 2}}};
    frames.push_back(cluster::build_frame(make_mini_trace(spec), params));
  }
  return track_frames(std::move(frames), {});
}

std::size_t count_blocks(const std::string& dat) {
  // gnuplot blocks are separated by double blank lines.
  std::size_t blocks = 0, pos = 0;
  while ((pos = dat.find("\n\n\n", pos)) != std::string::npos) {
    ++blocks;
    pos += 3;
  }
  return blocks;
}

TEST(GnuplotTest, FramesDatHasOneBlockPerFrame) {
  TrackingResult result = sample_result();
  std::string dat = gnuplot_frames_dat(result);
  EXPECT_EQ(count_blocks(dat), result.frames.size());
  EXPECT_NE(dat.find("# frame 0: run-0"), std::string::npos);
  EXPECT_NE(dat.find("# frame 1: run-1"), std::string::npos);
}

TEST(GnuplotTest, FramesDatRespectsSubsampling) {
  TrackingResult result = sample_result();
  GnuplotOptions tiny;
  tiny.max_points_per_object = 3;
  std::string small = gnuplot_frames_dat(result, tiny);
  std::string full = gnuplot_frames_dat(result, {.max_points_per_object = 0});
  EXPECT_LT(small.size(), full.size());
}

TEST(GnuplotTest, TrendsDatHasOneBlockPerCompleteRegion) {
  TrackingResult result = sample_result();
  std::string dat = gnuplot_trends_dat(result);
  EXPECT_EQ(count_blocks(dat), result.complete_count);
  EXPECT_NE(dat.find("# region 1"), std::string::npos);
}

TEST(GnuplotTest, ScriptReferencesAllArtifacts) {
  TrackingResult result = sample_result();
  std::string script = gnuplot_script("out/base", result);
  EXPECT_NE(script.find("out/base.frames.dat"), std::string::npos);
  EXPECT_NE(script.find("out/base.trends.dat"), std::string::npos);
  EXPECT_NE(script.find("out/base.frames.png"), std::string::npos);
  EXPECT_NE(script.find("Region 1"), std::string::npos);
  EXPECT_NE(script.find("Region 2"), std::string::npos);
  EXPECT_NE(script.find("multiplot"), std::string::npos);
}

TEST(GnuplotTest, SaveWritesThreeFiles) {
  TrackingResult result = sample_result();
  std::string base = ::testing::TempDir() + "/pt_gp";
  save_gnuplot(base, result);
  for (const char* suffix : {".frames.dat", ".trends.dat", ".gp"}) {
    std::ifstream in(base + suffix);
    EXPECT_TRUE(in.good()) << suffix;
    std::remove((base + suffix).c_str());
  }
}

TEST(GnuplotTest, SaveBadPathThrows) {
  TrackingResult result = sample_result();
  EXPECT_THROW(save_gnuplot("/nonexistent-xyz/base", result), IoError);
}

}  // namespace
}  // namespace perftrack::tracking
