#include "tracking/tracker.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "testing/test_traces.hpp"

namespace perftrack::tracking {
namespace {

using perftrack::testing::MiniPhase;
using perftrack::testing::MiniTraceSpec;
using perftrack::testing::make_mini_trace;

cluster::ClusteringParams clustering() {
  cluster::ClusteringParams params;
  params.log_scale = {true, false};
  params.dbscan.eps = 0.05;
  params.dbscan.min_pts = 3;
  return params;
}

MiniTraceSpec base_spec(const std::string& label, std::uint64_t seed) {
  MiniTraceSpec spec;
  spec.label = label;
  spec.seed = seed;
  spec.phases = {MiniPhase{8e6, 1.0, {"p1", "x.c", 1}},
                 MiniPhase{3e6, 1.5, {"p2", "x.c", 2}},
                 MiniPhase{1e6, 0.5, {"p3", "x.c", 3}}};
  return spec;
}

std::vector<cluster::Frame> frame_sequence(int count) {
  std::vector<cluster::Frame> frames;
  for (int i = 0; i < count; ++i)
    frames.push_back(cluster::build_frame(
        make_mini_trace(base_spec("exp-" + std::to_string(i),
                                  100 + static_cast<std::uint64_t>(i))),
        clustering()));
  return frames;
}

TEST(TrackerTest, RequiresTwoFrames) {
  EXPECT_THROW(track_frames(frame_sequence(1), {}), PreconditionError);
}

TEST(TrackerTest, StableSequenceTracksEverything) {
  TrackingResult result = track_frames(frame_sequence(4), {});
  EXPECT_EQ(result.complete_count, 3u);
  EXPECT_DOUBLE_EQ(result.coverage, 1.0);
  EXPECT_EQ(result.pairs.size(), 3u);
  EXPECT_EQ(result.regions.size(), 3u);
  for (const auto& region : result.regions) {
    EXPECT_TRUE(region.complete);
    EXPECT_EQ(region.frames_present(), 4u);
  }
}

TEST(TrackerTest, RegionsOrderedByDuration) {
  TrackingResult result = track_frames(frame_sequence(3), {});
  for (std::size_t r = 1; r < result.regions.size(); ++r)
    EXPECT_GE(result.regions[r - 1].total_duration,
              result.regions[r].total_duration);
  // Region 0 is the heavy phase in every frame.
  for (std::size_t f = 0; f < result.frames.size(); ++f) {
    ASSERT_EQ(result.regions[0].members[f].size(), 1u);
    ObjectId o = *result.regions[0].members[f].begin();
    EXPECT_NEAR(result.frames[f].object(o).centroid[0], 8e6, 8e6 * 0.05);
  }
}

TEST(TrackerTest, RenamingIsConsistentWithRegions) {
  TrackingResult result = track_frames(frame_sequence(3), {});
  for (const auto& region : result.regions)
    for (std::size_t f = 0; f < result.frames.size(); ++f)
      for (ObjectId o : region.members[f])
        EXPECT_EQ(result.renaming[f][static_cast<std::size_t>(o)],
                  region.id);
  // Every object is named (full coverage here).
  for (std::size_t f = 0; f < result.frames.size(); ++f)
    for (auto name : result.renaming[f]) EXPECT_GE(name, 0);
}

TEST(TrackerTest, SplitRegionStaysOneRegionAcrossChain) {
  // Middle and last frames have the first phase split per-task; chaining
  // must keep one region whose members widen to two objects there.
  std::vector<cluster::Frame> frames;
  for (int i = 0; i < 3; ++i) {
    MiniTraceSpec spec = base_spec("exp-" + std::to_string(i),
                                   200 + static_cast<std::uint64_t>(i));
    spec.tasks = 8;
    if (i >= 1) {
      spec.phases[0].split_fraction = 0.5;
      spec.phases[0].split_instr_factor = 1.7;
    }
    frames.push_back(cluster::build_frame(make_mini_trace(spec),
                                          clustering()));
  }
  ASSERT_EQ(frames[0].object_count(), 3u);
  ASSERT_EQ(frames[1].object_count(), 4u);
  TrackingResult result = track_frames(frames, {});
  EXPECT_EQ(result.complete_count, 3u);
  EXPECT_DOUBLE_EQ(result.coverage, 1.0);
  // One region holds two objects in the split frames.
  bool found_split = false;
  for (const auto& region : result.regions)
    if (region.members[1].size() == 2 && region.members[2].size() == 2)
      found_split = true;
  EXPECT_TRUE(found_split);
}

TEST(TrackerTest, VanishingPhaseYieldsPartialRegion) {
  // A phase present only in the first two frames: it cannot span the
  // sequence, so it becomes a partial region and lowers coverage.
  std::vector<cluster::Frame> frames;
  for (int i = 0; i < 3; ++i) {
    MiniTraceSpec spec = base_spec("exp-" + std::to_string(i),
                                   300 + static_cast<std::uint64_t>(i));
    if (i == 2) spec.phases.pop_back();  // p3 disappears
    frames.push_back(cluster::build_frame(make_mini_trace(spec),
                                          clustering()));
  }
  TrackingResult result = track_frames(frames, {});
  EXPECT_EQ(result.complete_count, 2u);
  EXPECT_DOUBLE_EQ(result.coverage, 1.0);  // min objects = 2, both tracked
  EXPECT_EQ(result.regions.size(), 3u);
  EXPECT_FALSE(result.regions.back().complete);
  EXPECT_EQ(result.regions.back().frames_present(), 2u);
}

TEST(TrackerTest, RegionAccessorValidates) {
  TrackingResult result = track_frames(frame_sequence(2), {});
  EXPECT_NO_THROW(result.region(0));
  EXPECT_THROW(result.region(99), PreconditionError);
  EXPECT_THROW(result.region(-1), PreconditionError);
}

}  // namespace
}  // namespace perftrack::tracking
