#include "tracking/pipeline.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "testing/test_traces.hpp"

namespace perftrack::tracking {
namespace {

using perftrack::testing::MiniPhase;
using perftrack::testing::MiniTraceSpec;
using perftrack::testing::make_mini_trace;

std::shared_ptr<const trace::Trace> experiment(const std::string& label,
                                               std::uint64_t seed) {
  MiniTraceSpec spec;
  spec.label = label;
  spec.seed = seed;
  spec.phases = {MiniPhase{8e6, 1.0, {"p1", "x.c", 1}},
                 MiniPhase{1e6, 2.0, {"p2", "x.c", 2}}};
  return make_mini_trace(spec);
}

TEST(PipelineTest, DefaultsToPaperAxes) {
  TrackingPipeline pipeline;
  ASSERT_EQ(pipeline.clustering().projection.metrics.size(), 2u);
  EXPECT_EQ(pipeline.clustering().projection.metrics[0],
            trace::Metric::Instructions);
  EXPECT_EQ(pipeline.clustering().projection.metrics[1],
            trace::Metric::Ipc);
}

TEST(PipelineTest, RejectsNullAndTooFewExperiments) {
  TrackingPipeline pipeline;
  EXPECT_THROW(pipeline.add_experiment(nullptr), PreconditionError);
  pipeline.add_experiment(experiment("A", 1));
  EXPECT_THROW(pipeline.run(), PreconditionError);
}

TEST(PipelineTest, EndToEndRun) {
  TrackingPipeline pipeline;
  pipeline.add_experiment(experiment("A", 1));
  pipeline.add_experiment(experiment("B", 2));
  pipeline.add_experiment(experiment("C", 3));
  SessionConfig config = pipeline.config();
  config.clustering.dbscan.eps = 0.05;
  config.clustering.dbscan.min_pts = 3;
  pipeline.set_config(config);

  TrackingResult result = pipeline.run();
  EXPECT_EQ(result.frames.size(), 3u);
  EXPECT_EQ(result.complete_count, 2u);
  EXPECT_DOUBLE_EQ(result.coverage, 1.0);
  EXPECT_EQ(result.frames[0].label(), "A");
  EXPECT_EQ(result.frames[2].label(), "C");
}

TEST(PipelineTest, TrackingParamsArePassedThrough) {
  TrackingPipeline pipeline;
  pipeline.add_experiment(experiment("A", 1));
  pipeline.add_experiment(experiment("B", 2));
  SessionConfig config = pipeline.config();
  config.clustering.dbscan.eps = 0.05;
  config.clustering.dbscan.min_pts = 3;
  config.tracking.use_sequence = false;
  config.tracking.use_spmd = false;
  pipeline.set_config(config);
  EXPECT_FALSE(pipeline.tracking().use_sequence);
  TrackingResult result = pipeline.run();
  EXPECT_EQ(result.complete_count, 2u);
}

}  // namespace
}  // namespace perftrack::tracking
