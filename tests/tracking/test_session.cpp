#include "tracking/session.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "common/error.hpp"
#include "testing/test_traces.hpp"
#include "tracking/pipeline.hpp"
#include "tracking/report.hpp"

namespace perftrack::tracking {
namespace {

namespace fs = std::filesystem;

using perftrack::testing::MiniPhase;
using perftrack::testing::MiniTraceSpec;
using perftrack::testing::make_mini_trace;

std::shared_ptr<const trace::Trace> experiment(const std::string& label,
                                               std::uint64_t seed,
                                               double noise = 0.0) {
  MiniTraceSpec spec;
  spec.label = label;
  spec.seed = seed;
  spec.noise = noise;
  spec.phases = {MiniPhase{8e6, 1.0, {"p1", "x.c", 1}},
                 MiniPhase{1e6, 2.0, {"p2", "x.c", 2}}};
  return make_mini_trace(spec);
}

SessionConfig test_config() {
  SessionConfig config;
  config.clustering.dbscan.eps = 0.05;
  config.clustering.dbscan.min_pts = 3;
  return config;
}

/// Bit-level equivalence of two tracking results: everything a report or a
/// downstream consumer can observe must be identical, including the exact
/// double values (no tolerance).
void expect_same_tracking(const TrackingResult& a, const TrackingResult& b) {
  ASSERT_EQ(a.frames.size(), b.frames.size());
  for (std::size_t f = 0; f < a.frames.size(); ++f) {
    EXPECT_EQ(a.frames[f].label(), b.frames[f].label());
    EXPECT_EQ(a.frames[f].object_count(), b.frames[f].object_count());
  }
  EXPECT_TRUE(a.scale == b.scale);
  ASSERT_EQ(a.pairs.size(), b.pairs.size());
  for (std::size_t p = 0; p < a.pairs.size(); ++p)
    EXPECT_EQ(a.pairs[p].relations.size(), b.pairs[p].relations.size());
  ASSERT_EQ(a.regions.size(), b.regions.size());
  for (std::size_t r = 0; r < a.regions.size(); ++r) {
    EXPECT_EQ(a.regions[r].members, b.regions[r].members);
    EXPECT_EQ(a.regions[r].complete, b.regions[r].complete);
    EXPECT_EQ(a.regions[r].total_duration, b.regions[r].total_duration);
  }
  EXPECT_EQ(a.renaming, b.renaming);
  EXPECT_EQ(a.complete_count, b.complete_count);
  EXPECT_EQ(a.coverage, b.coverage);
  EXPECT_EQ(a.gaps.size(), b.gaps.size());
  // The rendered artefacts are the end-to-end bit-identity check.
  EXPECT_EQ(describe_tracking(a), describe_tracking(b));
  EXPECT_EQ(trends_csv(a), trends_csv(b));
}

TEST(SessionConfigTest, ValidConfigHasNoProblems) {
  EXPECT_TRUE(test_config().validate().empty());
  EXPECT_NO_THROW(test_config().validate_or_throw());
}

TEST(SessionConfigTest, ReportsAllProblemsAtOnce) {
  SessionConfig config = test_config();
  config.clustering.dbscan.eps = -1.0;
  config.clustering.dbscan.min_pts = 0;
  config.clustering.min_cluster_time_fraction = 2.0;
  config.tracking.outlier_threshold = 3.0;
  config.resilience.max_gap_fraction = -0.25;

  std::vector<std::string> problems = config.validate();
  EXPECT_EQ(problems.size(), 5u);

  try {
    config.validate_or_throw();
    FAIL() << "expected Error";
  } catch (const Error& error) {
    std::string what = error.what();
    // One message listing every problem, not just the first.
    EXPECT_NE(what.find("5 problems"), std::string::npos) << what;
    EXPECT_NE(what.find("eps"), std::string::npos);
    EXPECT_NE(what.find("min_pts"), std::string::npos);
    EXPECT_NE(what.find("max_gap_fraction"), std::string::npos);
  }
}

TEST(SessionConfigTest, CacheDirThatIsARegularFileIsAProblem) {
  fs::path file = fs::path(::testing::TempDir()) / "pt_session_not_a_dir";
  fs::remove_all(file);
  { std::ofstream(file) << "occupied"; }

  SessionConfig config = test_config();
  config.cache.directory = file.string();
  std::vector<std::string> problems = config.validate();
  ASSERT_EQ(problems.size(), 1u);
  // The message must name the path and say what is wrong with it.
  EXPECT_NE(problems[0].find(file.string()), std::string::npos) << problems[0];
  EXPECT_NE(problems[0].find("not a directory"), std::string::npos)
      << problems[0];
  EXPECT_THROW(TrackingSession{config}, Error);

  // A missing directory is fine (created on first write), as is an
  // existing one.
  config.cache.directory = (file.string() + "-missing");
  EXPECT_TRUE(config.validate().empty());
  fs::remove_all(file);
}

TEST(SessionConfigTest, SessionConstructorValidates) {
  SessionConfig config = test_config();
  config.clustering.dbscan.eps = 0.0;
  EXPECT_THROW(TrackingSession{config}, Error);
}

TEST(SessionConfigTest, PipelineConfigIsTheOneSurface) {
  TrackingPipeline pipeline;
  SessionConfig config = pipeline.config();
  config.clustering.dbscan.eps = 0.123;
  config.tracking.use_spmd = false;
  config.resilience.lenient = true;
  config.cache.directory = "/tmp/somewhere";
  pipeline.set_config(config);

  EXPECT_EQ(pipeline.config().clustering.dbscan.eps, 0.123);
  EXPECT_FALSE(pipeline.config().tracking.use_spmd);
  EXPECT_TRUE(pipeline.config().resilience.lenient);
  EXPECT_EQ(pipeline.config().cache.directory, "/tmp/somewhere");
  // The read-only views mirror the aggregate.
  EXPECT_EQ(pipeline.clustering().dbscan.eps, 0.123);
  EXPECT_FALSE(pipeline.tracking().use_spmd);
  EXPECT_TRUE(pipeline.resilience().lenient);
  EXPECT_EQ(pipeline.cache().directory, "/tmp/somewhere");
}

TEST(SessionTest, NeedsTwoSlots) {
  TrackingSession session(test_config());
  EXPECT_THROW(session.append_experiment(nullptr), PreconditionError);
  session.append_experiment(experiment("A", 1));
  EXPECT_THROW(session.retrack(), PreconditionError);
}

TEST(SessionTest, IncrementalAppendsMatchColdBatch) {
  auto a = experiment("A", 1, 0.02);
  auto b = experiment("B", 2, 0.02);
  auto c = experiment("C", 3, 0.02);
  auto d = experiment("D", 4, 0.02);

  TrackingPipeline batch;
  batch.set_config(test_config());
  for (const auto& t : {a, b, c, d}) batch.add_experiment(t);
  TrackingResult cold = batch.run();

  TrackingSession session(test_config());
  session.append_experiment(a);
  session.append_experiment(b);
  TrackingResult r2 = session.retrack();
  EXPECT_EQ(r2.frames.size(), 2u);
  session.append_experiment(c);
  session.append_experiment(d);
  TrackingResult r4 = session.retrack();

  expect_same_tracking(r4, cold);
  // Each experiment was clustered exactly once across both retracks.
  EXPECT_EQ(session.stats().frames_clustered, 4u);
  EXPECT_EQ(session.stats().frames_memoized, 2u);
}

TEST(SessionTest, RetrackTwiceReusesFramesAndPairs) {
  TrackingSession session(test_config());
  session.append_experiment(experiment("A", 1));
  session.append_experiment(experiment("B", 2));
  session.append_experiment(experiment("C", 3));
  TrackingResult first = session.retrack();
  const SessionStats after_first = session.stats();
  EXPECT_EQ(after_first.frames_clustered, 3u);
  EXPECT_EQ(after_first.pairs_tracked, 2u);

  TrackingResult second = session.retrack();
  expect_same_tracking(first, second);
  const SessionStats after_second = session.stats();
  EXPECT_EQ(after_second.frames_clustered, 3u) << "no re-clustering";
  EXPECT_EQ(after_second.frames_memoized, 3u);
  EXPECT_EQ(after_second.pairs_tracked, 2u) << "no re-tracking";
  EXPECT_EQ(after_second.pairs_memoized, 2u);
  EXPECT_EQ(after_second.scale_invalidations, 0u);
}

TEST(SessionTest, ScaleStableAppendTracksExactlyOneNewPair) {
  // Identical generator seeds produce identical point clouds, so the
  // appended experiment cannot move the min-max scale: the memoised pairs
  // stay valid and only the one new pair is tracked.
  TrackingSession session(test_config());
  session.append_experiment(experiment("A", 1));
  session.append_experiment(experiment("B", 1));
  session.append_experiment(experiment("C", 1));
  session.retrack();
  EXPECT_EQ(session.stats().pairs_tracked, 2u);

  session.append_experiment(experiment("D", 1));
  TrackingResult result = session.retrack();
  EXPECT_EQ(result.frames.size(), 4u);
  EXPECT_EQ(session.stats().scale_invalidations, 0u);
  EXPECT_EQ(session.stats().pairs_tracked, 3u) << "exactly one new pair";
  EXPECT_EQ(session.stats().pairs_memoized, 2u);
  EXPECT_EQ(session.stats().frames_clustered, 4u);
}

TEST(SessionTest, ScaleShiftInvalidatesPairsButNotFrames) {
  TrackingSession session(test_config());
  session.append_experiment(experiment("A", 1));
  session.append_experiment(experiment("B", 2));
  session.retrack();

  // A much larger phase extends the instruction range: the fitted scale
  // moves, so memoised pair relations are re-tracked — but from memoised
  // frames, with no re-clustering.
  MiniTraceSpec spec;
  spec.label = "C";
  spec.seed = 9;
  spec.phases = {MiniPhase{64e6, 1.0, {"p1", "x.c", 1}},
                 MiniPhase{1e6, 2.0, {"p2", "x.c", 2}}};
  auto c = make_mini_trace(spec);
  session.append_experiment(c);
  TrackingResult incremental = session.retrack();
  EXPECT_EQ(session.stats().scale_invalidations, 1u);
  EXPECT_EQ(session.stats().frames_clustered, 3u) << "frames stay memoised";
  EXPECT_EQ(session.stats().pairs_tracked, 1u + 2u)
      << "the old pair re-tracked under the new scale plus the new pair";

  // And the result is still bit-identical to a cold batch run.
  TrackingPipeline batch;
  batch.set_config(test_config());
  batch.add_experiment(experiment("A", 1));
  batch.add_experiment(experiment("B", 2));
  batch.add_experiment(c);
  expect_same_tracking(incremental, batch.run());
}

TEST(SessionTest, DiskCacheMakesWarmSessionClusterNothing) {
  fs::path dir =
      fs::path(::testing::TempDir()) / "pt_session_cache";
  fs::remove_all(dir);
  SessionConfig config = test_config();
  config.cache.directory = dir.string();

  auto a = experiment("A", 1);
  auto b = experiment("B", 2);
  auto c = experiment("C", 3);

  // Cold reference without any cache.
  TrackingPipeline reference;
  reference.set_config(test_config());
  for (const auto& t : {a, b, c}) reference.add_experiment(t);
  TrackingResult cold = reference.run();

  // Cold cached run populates the store.
  TrackingSession first(config);
  for (const auto& t : {a, b, c}) first.append_experiment(t);
  TrackingResult cached_cold = first.retrack();
  EXPECT_EQ(first.stats().frames_clustered, 3u);
  EXPECT_EQ(first.stats().cache.stores, 3u);

  // A brand-new session (fresh process in real life) loads every frame.
  TrackingSession second(config);
  for (const auto& t : {a, b, c}) second.append_experiment(t);
  TrackingResult warm = second.retrack();
  EXPECT_EQ(second.stats().frames_clustered, 0u) << "all from cache";
  EXPECT_EQ(second.stats().frames_from_cache, 3u);
  EXPECT_EQ(second.stats().cache.hits, 3u);

  // Cold, cached-cold and warm are all bit-identical.
  expect_same_tracking(cold, cached_cold);
  expect_same_tracking(cold, warm);
  fs::remove_all(dir);
}

TEST(SessionTest, GapsAreTrackedAcrossAndReported) {
  SessionConfig config = test_config();
  config.resilience.lenient = true;
  TrackingSession session(config);
  session.append_experiment(experiment("A", 1));
  session.append_gap("missing.ptt", "file not found");
  session.append_experiment(experiment("C", 3));
  EXPECT_EQ(session.experiment_count(), 3u);
  EXPECT_EQ(session.gap_count(), 1u);

  TrackingResult result = session.retrack();
  EXPECT_EQ(result.frames.size(), 2u);
  ASSERT_EQ(result.gaps.size(), 1u);
  EXPECT_EQ(result.gaps[0].slot, 1u);
  EXPECT_EQ(result.gaps[0].label, "missing.ptt");
  EXPECT_TRUE(result.degraded());
}

TEST(SessionTest, StrictModeRefusesGaps) {
  TrackingSession session(test_config());
  session.append_experiment(experiment("A", 1));
  session.append_gap("missing.ptt", "file not found");
  try {
    session.retrack();
    FAIL() << "expected Error";
  } catch (const Error& error) {
    EXPECT_NE(std::string(error.what()).find("enable lenient resilience"),
              std::string::npos);
  }
}

// --- Star-align memo ----------------------------------------------------

/// A trace whose frame clusters into three phases — a different task
/// sequence shape than the two-phase experiment() above.
std::shared_ptr<const trace::Trace> three_phase_experiment(
    const std::string& label, std::uint64_t seed) {
  MiniTraceSpec spec;
  spec.label = label;
  spec.seed = seed;
  spec.phases = {MiniPhase{8e6, 1.0, {"p1", "x.c", 1}},
                 MiniPhase{4e6, 1.5, {"p3", "x.c", 3}},
                 MiniPhase{1e6, 2.0, {"p2", "x.c", 2}}};
  return make_mini_trace(spec);
}

TEST(SessionTest, ReappendedExperimentHitsTheAlignmentMemo) {
  auto a = experiment("A", 1);
  auto b = three_phase_experiment("B", 2);

  TrackingSession session(test_config());
  session.append_experiment(a);
  session.append_experiment(b);
  session.retrack();
  const SessionStats before = session.stats();
  EXPECT_GE(before.alignments_computed, 1u);

  // Re-appending A re-clusters it into a frame with the same task
  // sequences: the profile must come from the memo, not a fresh MSA.
  session.append_experiment(a);
  TrackingResult warm = session.retrack();
  const SessionStats after = session.stats();
  EXPECT_EQ(after.alignments_computed, before.alignments_computed);
  EXPECT_EQ(after.alignments_memoized, before.alignments_memoized + 1);

  // And the memoized profile must not change the output.
  TrackingPipeline batch;
  batch.set_config(test_config());
  for (const auto& t : {a, b, a}) batch.add_experiment(t);
  expect_same_tracking(warm, batch.run());
}

TEST(SessionTest, DistinctAppendComputesAFreshAlignment) {
  TrackingSession session(test_config());
  session.append_experiment(experiment("A", 1));
  session.append_experiment(experiment("B", 2));
  session.retrack();
  const SessionStats before = session.stats();

  // A three-phase experiment has different task sequences than anything
  // aligned so far: no fingerprint bucket may serve it.
  session.append_experiment(three_phase_experiment("C", 3));
  session.retrack();
  const SessionStats after = session.stats();
  EXPECT_EQ(after.alignments_computed, before.alignments_computed + 1);
  EXPECT_EQ(after.alignments_memoized, before.alignments_memoized);
}

TEST(SessionTest, AlignmentMemoServesAcrossGapSlots) {
  SessionConfig config = test_config();
  config.resilience.lenient = true;

  auto a = experiment("A", 1);
  TrackingSession session(config);
  session.append_experiment(a);
  session.append_experiment(three_phase_experiment("B", 2));
  session.retrack();
  const SessionStats before = session.stats();

  // A gap slot between the original and the re-append: gaps own no frame
  // and no alignment, and must not disturb the memo probe for live slots.
  session.append_gap("missing.ptt", "file not found");
  session.append_experiment(a);
  TrackingResult result = session.retrack();
  const SessionStats after = session.stats();
  EXPECT_EQ(result.gaps.size(), 1u);
  EXPECT_EQ(after.alignments_computed, before.alignments_computed);
  EXPECT_EQ(after.alignments_memoized, before.alignments_memoized + 1);
}

}  // namespace
}  // namespace perftrack::tracking
