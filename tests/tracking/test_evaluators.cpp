#include <gtest/gtest.h>

#include <memory>

#include "sim/studies.hpp"
#include "testing/test_traces.hpp"
#include "tracking/evaluator_callstack.hpp"
#include "tracking/evaluator_displacement.hpp"
#include "tracking/evaluator_sequence.hpp"
#include "tracking/evaluator_spmd.hpp"
#include "tracking/frame_alignment.hpp"
#include "tracking/tracker.hpp"

namespace perftrack::tracking {
namespace {

using perftrack::testing::MiniPhase;
using perftrack::testing::MiniTraceSpec;
using perftrack::testing::make_mini_trace;

cluster::ClusteringParams clustering() {
  cluster::ClusteringParams params;
  params.log_scale = {true, false};
  params.dbscan.eps = 0.05;
  params.dbscan.min_pts = 3;
  return params;
}

cluster::Frame frame_of(const MiniTraceSpec& spec) {
  return cluster::build_frame(make_mini_trace(spec), clustering());
}

// --- Displacement -------------------------------------------------------

TEST(DisplacementEvaluator, StablePhasesClassifyUnivocally) {
  MiniTraceSpec a;
  a.label = "A";
  a.phases = {MiniPhase{8e6, 1.0, {"p1", "x.c", 1}},
              MiniPhase{1e6, 2.0, {"p2", "x.c", 2}}};
  MiniTraceSpec b = a;
  b.label = "B";
  b.seed = 2;
  cluster::Frame fa = frame_of(a), fb = frame_of(b);
  std::vector<cluster::Frame> frames{fa, fb};
  ScaleNormalization scale = ScaleNormalization::fit(frames, {true, false});
  DisplacementResult result = evaluate_displacement(fa, fb, scale, 0.05);
  ASSERT_EQ(result.a_to_b.rows(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_DOUBLE_EQ(result.a_to_b.at(i, i), 1.0);
    EXPECT_DOUBLE_EQ(result.b_to_a.at(i, i), 1.0);
  }
}

TEST(DisplacementEvaluator, SplitDistributesOneRowOverTwoColumns) {
  // A has one wide cluster; in B it split into two clusters bracketing A's
  // position, so A's points divide between them by proximity (the paper's
  // Fig. 3 row for region 4).
  // An anchor phase keeps the per-frame normalisation stable so the split
  // phase's noise cloud stays one cluster.
  MiniTraceSpec a;
  a.label = "A";
  a.tasks = 8;
  a.noise = 0.04;
  a.phases = {MiniPhase{40e6, 2.0, {"anchor", "x.c", 99}},
              MiniPhase{8e6, 1.0, {"p1", "x.c", 1}}};
  MiniTraceSpec b;
  b.label = "B";
  b.tasks = 8;
  b.phases = {MiniPhase{40e6, 2.0, {"anchor", "x.c", 99}},
              MiniPhase{6.2e6, 1.0, {"p1", "x.c", 1}},
              MiniPhase{10.5e6, 1.0, {"p1", "x.c", 1}}};
  cluster::Frame fa = frame_of(a), fb = frame_of(b);
  ASSERT_EQ(fa.object_count(), 2u);
  ASSERT_EQ(fb.object_count(), 3u);
  std::vector<cluster::Frame> frames{fa, fb};
  ScaleNormalization scale = ScaleNormalization::fit(frames, {true, false});
  DisplacementResult result = evaluate_displacement(fa, fb, scale, 0.05);
  // Object ids by duration: anchor 0 everywhere; B twins are 1 (10.5e6)
  // and 2 (6.2e6). Row A1 (the split phase) distributes over both.
  EXPECT_NEAR(result.a_to_b.at(1, 1) + result.a_to_b.at(1, 2), 1.0, 1e-9);
  EXPECT_GT(result.a_to_b.at(1, 1), 0.1);
  EXPECT_GT(result.a_to_b.at(1, 2), 0.1);
  // Reciprocally, both B twins point back at A1 with certainty.
  EXPECT_DOUBLE_EQ(result.b_to_a.at(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(result.b_to_a.at(2, 1), 1.0);
}

TEST(DisplacementEvaluator, OutlierThresholdDropsStragglers) {
  MiniTraceSpec a;
  a.label = "A";
  a.tasks = 32;
  a.noise = 0.02;
  a.phases = {MiniPhase{8e6, 1.0, {"p1", "x.c", 1}},
              MiniPhase{7e6, 1.05, {"p2", "x.c", 2}}};
  MiniTraceSpec b = a;
  b.label = "B";
  b.seed = 5;
  cluster::Frame fa = frame_of(a), fb = frame_of(b);
  std::vector<cluster::Frame> frames{fa, fb};
  ScaleNormalization scale = ScaleNormalization::fit(frames, {true, false});
  DisplacementResult strict = evaluate_displacement(fa, fb, scale, 0.25);
  // With a high threshold every kept cell is >= the threshold.
  for (std::size_t i = 0; i < strict.a_to_b.rows(); ++i)
    for (std::size_t j = 0; j < strict.a_to_b.cols(); ++j) {
      double v = strict.a_to_b.at(i, j);
      EXPECT_TRUE(v == 0.0 || v >= 0.25);
    }
}

TEST(DisplacementEvaluator, GridAndKdTreeEnginesAreByteIdentical) {
  // The auto engine (grid over these 2-D clouds) must reproduce the
  // kd-tree classification cell for cell, bitwise — this is the identity
  // the tracker's byte-identical-labels guarantee rests on.
  MiniTraceSpec a;
  a.label = "A";
  a.tasks = 16;
  a.noise = 0.05;
  a.phases = {MiniPhase{40e6, 2.0, {"anchor", "x.c", 99}},
              MiniPhase{8e6, 1.0, {"p1", "x.c", 1}}};
  MiniTraceSpec b;
  b.label = "B";
  b.tasks = 16;
  b.seed = 3;
  b.phases = {MiniPhase{40e6, 2.0, {"anchor", "x.c", 99}},
              MiniPhase{6.2e6, 1.0, {"p1", "x.c", 1}},
              MiniPhase{10.5e6, 1.0, {"p1", "x.c", 2}}};
  cluster::Frame fa = frame_of(a), fb = frame_of(b);
  std::vector<cluster::Frame> frames{fa, fb};
  ScaleNormalization scale = ScaleNormalization::fit(frames, {true, false});

  FrameCloud kd_a(fa, scale, DisplacementIndex::kKdTree);
  FrameCloud kd_b(fb, scale, DisplacementIndex::kKdTree);
  FrameCloud grid_a(fa, scale, DisplacementIndex::kGrid);
  FrameCloud grid_b(fb, scale, DisplacementIndex::kGrid);
  EXPECT_FALSE(kd_a.uses_grid());
  EXPECT_TRUE(grid_a.uses_grid());

  DisplacementResult kd = evaluate_displacement(fa, kd_a, fb, kd_b, 0.05);
  DisplacementResult grid =
      evaluate_displacement(fa, grid_a, fb, grid_b, 0.05);
  EXPECT_TRUE(kd.a_to_b == grid.a_to_b);
  EXPECT_TRUE(kd.b_to_a == grid.b_to_a);

  // Auto selection picks the grid on a 2-D cloud.
  FrameCloud auto_a(fa, scale);
  EXPECT_TRUE(auto_a.uses_grid());
}

TEST(DisplacementEvaluator, ClusterShortCircuitMatchesKdTreeOnDistantFrames) {
  // CGPOP's adjacent frames are nearly disjoint in the normalised space —
  // the regime where the grid engine's cluster-level short-circuit fires
  // for most source clusters. Its verdicts must reproduce the exact
  // kd-tree sweep bitwise on every pair.
  std::vector<cluster::Frame> frames = sim::study_cgpop().frames();
  ScaleNormalization scale = ScaleNormalization::fit(
      frames, tracking_log_scale(TrackingParams{}, frames[0]));
  std::vector<std::unique_ptr<FrameCloud>> kd, grid;
  for (const cluster::Frame& f : frames) {
    kd.push_back(
        std::make_unique<FrameCloud>(f, scale, DisplacementIndex::kKdTree));
    grid.push_back(
        std::make_unique<FrameCloud>(f, scale, DisplacementIndex::kGrid));
  }
  for (std::size_t p = 0; p + 1 < frames.size(); ++p) {
    DisplacementResult a = evaluate_displacement(frames[p], *kd[p],
                                                 frames[p + 1], *kd[p + 1]);
    DisplacementResult b = evaluate_displacement(frames[p], *grid[p],
                                                 frames[p + 1], *grid[p + 1]);
    EXPECT_TRUE(a.a_to_b == b.a_to_b) << "pair " << p;
    EXPECT_TRUE(a.b_to_a == b.b_to_a) << "pair " << p;
  }
}

// --- SPMD ---------------------------------------------------------------

TEST(SpmdEvaluator, DistinctPhasesAreNotSimultaneous) {
  MiniTraceSpec spec;
  spec.phases = {MiniPhase{8e6, 1.0, {"p1", "x.c", 1}},
                 MiniPhase{1e6, 2.0, {"p2", "x.c", 2}}};
  cluster::Frame frame = frame_of(spec);
  FrameAlignment alignment(frame);
  CorrelationMatrix spmd = evaluate_spmd(frame, alignment, 0.05);
  EXPECT_DOUBLE_EQ(spmd.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(spmd.at(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(spmd.at(0, 0), 0.0);  // diagonal zero
}

TEST(SpmdEvaluator, SplitHalvesAreFullySimultaneous) {
  MiniTraceSpec spec;
  spec.tasks = 8;
  spec.phases = {MiniPhase{8e6, 1.0, {"p1", "x.c", 1}},
                 MiniPhase{1e6, 2.0, {"p2", "x.c", 2}}};
  // Split p1 by IPC across tasks: two clusters, same alignment column.
  spec.phases[0].split_fraction = 0.5;
  spec.phases[0].split_ipc_factor = 0.55;
  cluster::Frame frame = frame_of(spec);
  ASSERT_EQ(frame.object_count(), 3u);
  FrameAlignment alignment(frame);
  CorrelationMatrix spmd = evaluate_spmd(frame, alignment, 0.05);
  // Exactly one pair is simultaneous (the two halves of p1).
  int strong_pairs = 0;
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = i + 1; j < 3; ++j)
      if (spmd.at(i, j) >= 0.9) ++strong_pairs;
  EXPECT_EQ(strong_pairs, 1);
}

// --- Call stack ---------------------------------------------------------

TEST(CallstackEvaluator, SharedLocationLinksObjects) {
  MiniTraceSpec a;
  a.label = "A";
  a.phases = {MiniPhase{8e6, 1.0, {"same", "x.c", 42}},
              MiniPhase{1e6, 2.0, {"other", "x.c", 99}}};
  MiniTraceSpec b = a;
  b.label = "B";
  cluster::Frame fa = frame_of(a), fb = frame_of(b);
  CorrelationMatrix cs = evaluate_callstack(fa, fb, 0.05);
  // Phase order by duration: p1 is object 0 in both frames.
  EXPECT_DOUBLE_EQ(cs.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(cs.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(cs.at(1, 1), 1.0);
  EXPECT_TRUE(share_code_reference(fa, 0, fb, 0));
  EXPECT_FALSE(share_code_reference(fa, 0, fb, 1));
}

TEST(CallstackEvaluator, TwoPhasesSharingOneLineBothMatch) {
  MiniTraceSpec a;
  a.label = "A";
  a.phases = {MiniPhase{8e6, 1.0, {"f", "x.c", 7}},
              MiniPhase{1e6, 2.0, {"f", "x.c", 7}}};
  MiniTraceSpec b = a;
  b.label = "B";
  cluster::Frame fa = frame_of(a), fb = frame_of(b);
  CorrelationMatrix cs = evaluate_callstack(fa, fb, 0.05);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j)
      EXPECT_DOUBLE_EQ(cs.at(i, j), 1.0);
}

// --- Sequence -----------------------------------------------------------

TEST(SequenceEvaluator, PivotsResolveUnknownCorrespondences) {
  // Three phases; pretend only the first is pivoted, the other two must be
  // inferred from their positions between the pivots.
  MiniTraceSpec a;
  a.label = "A";
  a.phases = {MiniPhase{8e6, 1.0, {"p1", "x.c", 1}},
              MiniPhase{3e6, 1.5, {"p2", "x.c", 2}},
              MiniPhase{1e6, 0.5, {"p3", "x.c", 3}}};
  MiniTraceSpec b = a;
  b.label = "B";
  cluster::Frame fa = frame_of(a), fb = frame_of(b);
  ASSERT_EQ(fa.object_count(), 3u);
  FrameAlignment align_a(fa), align_b(fb);

  RelationSet pivots;
  pivots.relations.push_back(Relation{{0}, {0}});
  CorrelationMatrix seq =
      evaluate_sequence(fa, align_a, fb, align_b, pivots, 0.05);
  // Identical structures: objects align position by position.
  EXPECT_GE(seq.at(1, 1), 0.9);
  EXPECT_GE(seq.at(2, 2), 0.9);
  EXPECT_DOUBLE_EQ(seq.at(1, 2), 0.0);
}

TEST(SequenceEvaluator, ContradictingPivotsScoreNothing) {
  MiniTraceSpec a;
  a.label = "A";
  a.phases = {MiniPhase{8e6, 1.0, {"p1", "x.c", 1}},
              MiniPhase{3e6, 1.5, {"p2", "x.c", 2}}};
  MiniTraceSpec b = a;
  b.label = "B";
  cluster::Frame fa = frame_of(a), fb = frame_of(b);
  FrameAlignment align_a(fa), align_b(fb);
  // Deliberately cross the pivots: A0 = B1, A1 = B0.
  RelationSet pivots;
  pivots.relations.push_back(Relation{{0}, {1}});
  pivots.relations.push_back(Relation{{1}, {0}});
  CorrelationMatrix seq =
      evaluate_sequence(fa, align_a, fb, align_b, pivots, 0.05);
  // The aligner must honour the (crossed) pivots, not the natural order.
  EXPECT_DOUBLE_EQ(seq.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(seq.at(1, 1), 0.0);
}

TEST(SequenceEvaluator, BandedEngineMatchesFullDp) {
  // The evaluator's pivot-scored custom DP must be engine-independent:
  // the banded run (certified against the 3.0 pivot-match bound) and the
  // full DP must produce cell-identical correlation matrices.
  MiniTraceSpec a;
  a.label = "A";
  a.phases = {MiniPhase{8e6, 1.0, {"p1", "x.c", 1}},
              MiniPhase{3e6, 1.5, {"p2", "x.c", 2}},
              MiniPhase{1e6, 0.5, {"p3", "x.c", 3}}};
  MiniTraceSpec b = a;
  b.label = "B";
  cluster::Frame fa = frame_of(a), fb = frame_of(b);
  FrameAlignment align_a(fa), align_b(fb);

  RelationSet pivots;
  pivots.relations.push_back(Relation{{0}, {0}});
  CorrelationMatrix full = evaluate_sequence(
      fa, align_a, fb, align_b, pivots, 0.05, align::AlignmentEngine::kFull);
  CorrelationMatrix banded =
      evaluate_sequence(fa, align_a, fb, align_b, pivots, 0.05,
                        align::AlignmentEngine::kBanded);
  EXPECT_TRUE(full == banded);
}

}  // namespace
}  // namespace perftrack::tracking
