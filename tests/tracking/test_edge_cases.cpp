// Degenerate and adversarial inputs the pipeline must survive: frames
// without objects, fully pruned relation graphs, single-object frames,
// disappearing structure, and noise-only clusterings.

#include <gtest/gtest.h>

#include "testing/test_traces.hpp"
#include "tracking/pipeline.hpp"
#include "tracking/report.hpp"

namespace perftrack::tracking {
namespace {

using perftrack::testing::MiniPhase;
using perftrack::testing::MiniTraceSpec;
using perftrack::testing::make_mini_trace;

cluster::ClusteringParams loose_clustering() {
  cluster::ClusteringParams params;
  params.log_scale = {true, false};
  params.dbscan.eps = 0.05;
  params.dbscan.min_pts = 3;
  return params;
}

cluster::Frame frame_of(const MiniTraceSpec& spec,
                        const cluster::ClusteringParams& params) {
  return cluster::build_frame(make_mini_trace(spec), params);
}

TEST(TrackingEdgeCases, FrameWithNoObjectsYieldsZeroCoverage) {
  // min_pts higher than any cluster size: everything is noise.
  MiniTraceSpec spec;
  spec.label = "noise";
  spec.tasks = 2;
  spec.iterations = 2;
  spec.phases = {MiniPhase{1e6, 1.0}};
  cluster::ClusteringParams params = loose_clustering();
  params.dbscan.min_pts = 50;
  std::vector<cluster::Frame> frames{frame_of(spec, params),
                                     frame_of(spec, params)};
  ASSERT_EQ(frames[0].object_count(), 0u);
  TrackingResult result = track_frames(std::move(frames), {});
  EXPECT_EQ(result.complete_count, 0u);
  EXPECT_DOUBLE_EQ(result.coverage, 0.0);
  EXPECT_TRUE(result.regions.empty());
  // Reports must not crash on the empty result.
  EXPECT_FALSE(describe_tracking(result).empty());
  EXPECT_FALSE(trends_csv(result).empty());
}

TEST(TrackingEdgeCases, OneEmptyFrameAmongNormalOnes) {
  MiniTraceSpec normal;
  normal.label = "normal";
  normal.phases = {MiniPhase{8e6, 1.0, {"p1", "x.c", 1}},
                   MiniPhase{1e6, 2.0, {"p2", "x.c", 2}}};
  cluster::ClusteringParams params = loose_clustering();
  cluster::ClusteringParams all_noise = loose_clustering();
  all_noise.dbscan.min_pts = 10000;
  std::vector<cluster::Frame> frames{frame_of(normal, params),
                                     frame_of(normal, all_noise),
                                     frame_of(normal, params)};
  TrackingResult result = track_frames(std::move(frames), {});
  // Nothing can span the empty middle frame.
  EXPECT_EQ(result.complete_count, 0u);
  EXPECT_DOUBLE_EQ(result.coverage, 0.0);
  // The outer frames' objects survive as partial regions.
  EXPECT_EQ(result.regions.size(), 4u);
}

TEST(TrackingEdgeCases, SingleObjectFrames) {
  MiniTraceSpec spec;
  spec.label = "mono";
  spec.phases = {MiniPhase{5e6, 1.0, {"only", "x.c", 1}}};
  cluster::ClusteringParams params = loose_clustering();
  std::vector<cluster::Frame> frames{frame_of(spec, params),
                                     frame_of(spec, params)};
  TrackingResult result = track_frames(std::move(frames), {});
  EXPECT_EQ(result.complete_count, 1u);
  EXPECT_DOUBLE_EQ(result.coverage, 1.0);
}

TEST(TrackingEdgeCases, DisjointCallstacksPruneEverything) {
  // Same performance space positions but disjoint source references: the
  // call-stack evaluator must veto every link.
  MiniTraceSpec a;
  a.label = "A";
  a.phases = {MiniPhase{5e6, 1.0, {"alpha", "a.c", 1}}};
  MiniTraceSpec b = a;
  b.label = "B";
  b.phases = {MiniPhase{5e6, 1.0, {"beta", "b.c", 2}}};
  cluster::ClusteringParams params = loose_clustering();
  std::vector<cluster::Frame> frames{frame_of(a, params),
                                     frame_of(b, params)};
  TrackingResult result = track_frames(std::move(frames), {});
  EXPECT_EQ(result.complete_count, 0u);
  ASSERT_EQ(result.pairs.size(), 1u);
  EXPECT_EQ(result.pairs[0].relations.size(), 0u);
  EXPECT_EQ(result.pairs[0].relations.unmatched_left.size(), 1u);
  EXPECT_EQ(result.pairs[0].relations.unmatched_right.size(), 1u);
  // With the call-stack heuristic disabled, the link is accepted.
  TrackingParams no_prune;
  no_prune.use_callstack = false;
  std::vector<cluster::Frame> frames2{frame_of(a, params),
                                      frame_of(b, params)};
  TrackingResult permissive = track_frames(std::move(frames2), no_prune);
  EXPECT_EQ(permissive.complete_count, 1u);
}

TEST(TrackingEdgeCases, AllEvaluatorsDisabledTracksNothing) {
  MiniTraceSpec spec;
  spec.label = "x";
  spec.phases = {MiniPhase{5e6, 1.0, {"p", "x.c", 1}}};
  cluster::ClusteringParams cparams = loose_clustering();
  std::vector<cluster::Frame> frames{frame_of(spec, cparams),
                                     frame_of(spec, cparams)};
  TrackingParams params;
  params.use_displacement = false;
  params.use_spmd = false;
  params.use_sequence = false;
  TrackingResult result = track_frames(std::move(frames), params);
  EXPECT_EQ(result.complete_count, 0u);
}

TEST(TrackingEdgeCases, ManyFramesChainCorrectly) {
  // A long 12-frame sequence with mild drift: chaining must stay intact.
  cluster::ClusteringParams params = loose_clustering();
  std::vector<cluster::Frame> frames;
  for (int i = 0; i < 12; ++i) {
    MiniTraceSpec spec;
    spec.label = "t" + std::to_string(i);
    spec.seed = 900 + static_cast<std::uint64_t>(i);
    spec.phases = {
        MiniPhase{8e6 * (1.0 + 0.02 * i), 1.0, {"p1", "x.c", 1}},
        MiniPhase{1e6, 2.0 * (1.0 - 0.01 * i), {"p2", "x.c", 2}}};
    frames.push_back(frame_of(spec, params));
  }
  TrackingResult result = track_frames(std::move(frames), {});
  EXPECT_EQ(result.complete_count, 2u);
  EXPECT_DOUBLE_EQ(result.coverage, 1.0);
  for (const auto& region : result.regions)
    EXPECT_EQ(region.frames_present(), 12u);
}

TEST(TrackingEdgeCases, ReversedSequenceTracksTheSameStructure) {
  // Tracking is built from pairwise relations; playing the sequence
  // backwards must find the same number of complete regions.
  cluster::ClusteringParams params = loose_clustering();
  std::vector<cluster::Frame> forward;
  for (int i = 0; i < 4; ++i) {
    MiniTraceSpec spec;
    spec.label = "t" + std::to_string(i);
    spec.seed = 800 + static_cast<std::uint64_t>(i);
    spec.phases = {
        MiniPhase{8e6, 1.0 - 0.05 * i, {"p1", "x.c", 1}},
        MiniPhase{1e6, 2.0, {"p2", "x.c", 2}}};
    forward.push_back(frame_of(spec, params));
  }
  std::vector<cluster::Frame> backward(forward.rbegin(), forward.rend());
  TrackingResult fwd = track_frames(std::move(forward), {});
  TrackingResult bwd = track_frames(std::move(backward), {});
  EXPECT_EQ(fwd.complete_count, bwd.complete_count);
  EXPECT_DOUBLE_EQ(fwd.coverage, bwd.coverage);
}

TEST(TrackingEdgeCases, TrackingIsFullyDeterministic) {
  cluster::ClusteringParams params = loose_clustering();
  auto build = [&]() {
    std::vector<cluster::Frame> frames;
    for (int i = 0; i < 3; ++i) {
      MiniTraceSpec spec;
      spec.label = "d" + std::to_string(i);
      spec.seed = 850 + static_cast<std::uint64_t>(i);
      spec.noise = 0.02;
      spec.phases = {MiniPhase{8e6, 1.0, {"p1", "x.c", 1}},
                     MiniPhase{1e6, 2.0, {"p2", "x.c", 2}}};
      frames.push_back(frame_of(spec, params));
    }
    return track_frames(std::move(frames), {});
  };
  TrackingResult a = build();
  TrackingResult b = build();
  EXPECT_EQ(a.complete_count, b.complete_count);
  EXPECT_EQ(a.renaming, b.renaming);
  for (std::size_t p = 0; p < a.pairs.size(); ++p)
    EXPECT_EQ(a.pairs[p].relations.relations,
              b.pairs[p].relations.relations);
}

TEST(TrackingEdgeCases, IdenticalPhasesSameLineGroupIntoOneRegion) {
  // Two phases with literally identical behaviour and the same source
  // line: DBSCAN merges them into one cluster — one region, no crash.
  MiniTraceSpec spec;
  spec.label = "twin";
  spec.phases = {MiniPhase{5e6, 1.0, {"f", "x.c", 7}},
                 MiniPhase{5e6, 1.0, {"f", "x.c", 7}}};
  cluster::ClusteringParams params = loose_clustering();
  std::vector<cluster::Frame> frames{frame_of(spec, params),
                                     frame_of(spec, params)};
  ASSERT_EQ(frames[0].object_count(), 1u);
  TrackingResult result = track_frames(std::move(frames), {});
  EXPECT_EQ(result.complete_count, 1u);
}

}  // namespace
}  // namespace perftrack::tracking
