#include "tracking/scale.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "testing/test_traces.hpp"

namespace perftrack::tracking {
namespace {

using perftrack::testing::MiniPhase;
using perftrack::testing::MiniTraceSpec;
using perftrack::testing::make_mini_trace;

cluster::ClusteringParams clustering() {
  cluster::ClusteringParams params;
  params.log_scale = {true, false};
  params.dbscan.eps = 0.05;
  params.dbscan.min_pts = 3;
  return params;
}

/// Frames of the same app at 4 and 8 tasks with perfect strong scaling:
/// per-task instructions halve, IPC constant.
std::vector<cluster::Frame> scaling_frames() {
  MiniTraceSpec small;
  small.label = "app-4";
  small.tasks = 4;
  small.phases = {MiniPhase{8e6, 1.0}, MiniPhase{2e6, 1.5}};
  MiniTraceSpec big = small;
  big.label = "app-8";
  big.tasks = 8;
  big.phases = {MiniPhase{4e6, 1.0}, MiniPhase{1e6, 1.5}};
  std::vector<cluster::Frame> frames;
  frames.push_back(cluster::build_frame(make_mini_trace(small), clustering()));
  frames.push_back(cluster::build_frame(make_mini_trace(big), clustering()));
  return frames;
}

TEST(ScaleNormalizationTest, TaskWeightingAlignsScaledExperiments) {
  auto frames = scaling_frames();
  ScaleNormalization scale =
      ScaleNormalization::fit(frames, {true, false});
  EXPECT_TRUE(scale.task_weighted(0));   // Instructions
  EXPECT_FALSE(scale.task_weighted(1));  // IPC

  // The same phase lands at the same normalised position in both frames:
  // 8e6 x 4 tasks == 4e6 x 8 tasks.
  auto a = scale.apply_one(std::vector<double>{8e6, 1.0}, 4);
  auto b = scale.apply_one(std::vector<double>{4e6, 1.0}, 8);
  EXPECT_NEAR(a[0], b[0], 1e-12);
  EXPECT_NEAR(a[1], b[1], 1e-12);
}

TEST(ScaleNormalizationTest, WithoutWeightingFramesDiverge) {
  auto frames = scaling_frames();
  ScaleNormalization scale =
      ScaleNormalization::fit(frames, {true, false}, /*task_weighting=*/false);
  EXPECT_FALSE(scale.task_weighted(0));
  auto a = scale.apply_one(std::vector<double>{8e6, 1.0}, 4);
  auto b = scale.apply_one(std::vector<double>{4e6, 1.0}, 8);
  EXPECT_GT(a[0] - b[0], 0.1);
}

TEST(ScaleNormalizationTest, MinMaxIsGlobalAcrossFrames) {
  auto frames = scaling_frames();
  ScaleNormalization scale =
      ScaleNormalization::fit(frames, {true, false});
  geom::PointSet n0 = scale.apply(frames[0]);
  geom::PointSet n1 = scale.apply(frames[1]);
  double lo = 1e300, hi = -1e300;
  for (std::size_t i = 0; i < n0.size(); ++i) {
    lo = std::min(lo, n0[i][1]);
    hi = std::max(hi, n0[i][1]);
  }
  for (std::size_t i = 0; i < n1.size(); ++i) {
    lo = std::min(lo, n1[i][1]);
    hi = std::max(hi, n1[i][1]);
  }
  EXPECT_NEAR(lo, 0.0, 1e-9);
  EXPECT_NEAR(hi, 1.0, 1e-9);
}

TEST(ScaleNormalizationTest, RejectsEmptyAndMismatched) {
  EXPECT_THROW(ScaleNormalization::fit({}), PreconditionError);
  auto frames = scaling_frames();
  EXPECT_THROW(ScaleNormalization::fit(frames, {true}), PreconditionError);
  ScaleNormalization scale = ScaleNormalization::fit(frames);
  EXPECT_THROW(scale.apply_one(std::vector<double>{1.0}, 4),
               PreconditionError);
}

TEST(ScaleNormalizationTest, ApplyCoversAllRows) {
  auto frames = scaling_frames();
  ScaleNormalization scale = ScaleNormalization::fit(frames);
  geom::PointSet normalized = scale.apply(frames[0]);
  EXPECT_EQ(normalized.size(), frames[0].projection().size());
}

TEST(ScaleNormalizationTest, ApplyClusteredMatchesFilteredApply) {
  // The fused path must produce exactly the rows the old two-step recipe
  // (apply everything, then drop noise) produced, bit for bit, with the
  // labels in the same order.
  MiniTraceSpec spec;
  spec.label = "noisy";
  spec.tasks = 8;
  spec.noise = 0.2;  // guarantee some kNoise rows
  spec.phases = {MiniPhase{8e6, 1.0}, MiniPhase{2e6, 1.5}};
  std::vector<cluster::Frame> frames;
  frames.push_back(cluster::build_frame(make_mini_trace(spec), clustering()));
  const cluster::Frame& frame = frames[0];
  ScaleNormalization scale = ScaleNormalization::fit(frames, {true, false});

  geom::PointSet full = scale.apply(frame);
  geom::PointSet expected(full.dims());
  std::vector<cluster::ObjectId> expected_labels;
  for (std::size_t row = 0; row < full.size(); ++row) {
    if (frame.labels()[row] == cluster::kNoise) continue;
    expected.add(full[row]);
    expected_labels.push_back(frame.labels()[row]);
  }
  ASSERT_LT(expected.size(), full.size());  // the noise actually filtered
  ASSERT_FALSE(expected.empty());

  std::vector<cluster::ObjectId> labels;
  geom::PointSet clustered = scale.apply_clustered(frame, labels);
  ASSERT_EQ(clustered.size(), expected.size());
  EXPECT_EQ(labels, expected_labels);
  for (std::size_t i = 0; i < clustered.size(); ++i)
    for (std::size_t d = 0; d < clustered.dims(); ++d)
      EXPECT_EQ(clustered[i][d], expected[i][d]) << "row " << i;
}

}  // namespace
}  // namespace perftrack::tracking
