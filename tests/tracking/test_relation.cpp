#include "tracking/relation.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace perftrack::tracking {
namespace {

TEST(RelationTest, UnivocalAndDescribe) {
  Relation r{{0}, {2}};
  EXPECT_TRUE(r.univocal());
  EXPECT_EQ(r.describe(), "{1} = {3}");
  Relation wide{{0, 1}, {2}};
  EXPECT_FALSE(wide.univocal());
  EXPECT_EQ(wide.describe(), "{1,2} = {3}");
}

TEST(RelationSetTest, Lookups) {
  RelationSet set;
  set.relations.push_back(Relation{{0}, {1}});
  set.relations.push_back(Relation{{1, 2}, {0, 2}});
  EXPECT_EQ(set.find_by_left(0), 0);
  EXPECT_EQ(set.find_by_left(2), 1);
  EXPECT_EQ(set.find_by_left(9), -1);
  EXPECT_EQ(set.find_by_right(2), 1);
  EXPECT_TRUE(set.related(0, 1));
  EXPECT_TRUE(set.related(1, 0));
  EXPECT_FALSE(set.related(0, 0));
  EXPECT_FALSE(set.related(9, 9));
}

TEST(RelationGraphTest, SimpleLinks) {
  RelationGraph g(3, 3);
  g.link(0, 0);
  g.link(1, 2);
  RelationSet set = g.components();
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set.relations[0], (Relation{{0}, {0}}));
  EXPECT_EQ(set.relations[1], (Relation{{1}, {2}}));
  EXPECT_EQ(set.unmatched_left, (std::vector<ObjectId>{2}));
  EXPECT_EQ(set.unmatched_right, (std::vector<ObjectId>{1}));
}

TEST(RelationGraphTest, MergesBuildWideRelations) {
  RelationGraph g(2, 3);
  g.link(0, 0);
  g.merge_right(0, 1);  // B0 and B1 are the same entity
  RelationSet set = g.components();
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.relations[0], (Relation{{0}, {0, 1}}));
}

TEST(RelationGraphTest, TransitiveClosureAcrossSides) {
  RelationGraph g(3, 3);
  g.link(0, 0);
  g.link(1, 0);  // both A0 and A1 map to B0 -> one wide relation
  g.link(1, 1);
  RelationSet set = g.components();
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.relations[0], (Relation{{0, 1}, {0, 1}}));
}

TEST(RelationGraphTest, MergeLeftWithoutCrossStaysUnmatched) {
  RelationGraph g(2, 1);
  g.merge_left(0, 1);
  RelationSet set = g.components();
  EXPECT_EQ(set.size(), 0u);
  EXPECT_EQ(set.unmatched_left.size(), 2u);
  EXPECT_EQ(set.unmatched_right.size(), 1u);
}

TEST(RelationGraphTest, ConnectivityQueries) {
  RelationGraph g(2, 2);
  EXPECT_FALSE(g.connected_left(0, 1));
  g.link(0, 0);
  g.link(1, 0);
  EXPECT_TRUE(g.connected_left(0, 1));
  EXPECT_TRUE(g.connected_cross(0, 0));
  EXPECT_FALSE(g.connected_cross(0, 1));
}

TEST(RelationGraphTest, OutOfRangeThrows) {
  RelationGraph g(2, 2);
  EXPECT_THROW(g.link(2, 0), PreconditionError);
  EXPECT_THROW(g.link(0, 2), PreconditionError);
  EXPECT_THROW(g.merge_left(-1, 0), PreconditionError);
}

TEST(RelationGraphTest, RelationsSortedByLeftMember) {
  RelationGraph g(3, 3);
  g.link(2, 0);
  g.link(0, 2);
  g.link(1, 1);
  RelationSet set = g.components();
  ASSERT_EQ(set.size(), 3u);
  EXPECT_EQ(*set.relations[0].left.begin(), 0);
  EXPECT_EQ(*set.relations[1].left.begin(), 1);
  EXPECT_EQ(*set.relations[2].left.begin(), 2);
}

}  // namespace
}  // namespace perftrack::tracking
