#include "tracking/correlation.hpp"

#include <gtest/gtest.h>

namespace perftrack::tracking {
namespace {

TEST(CorrelationMatrixTest, DefaultIsEmpty) {
  CorrelationMatrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
}

TEST(CorrelationMatrixTest, SetGetAdd) {
  CorrelationMatrix m(2, 3);
  m.set(0, 1, 0.5);
  m.add(0, 1, 0.25);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.75);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 0.0);
}

TEST(CorrelationMatrixTest, ThresholdZeroesSmallCells) {
  CorrelationMatrix m(1, 3);
  m.set(0, 0, 0.04);
  m.set(0, 1, 0.05);
  m.set(0, 2, 0.9);
  m.threshold(0.05);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.05);  // boundary kept
  EXPECT_DOUBLE_EQ(m.at(0, 2), 0.9);
}

TEST(CorrelationMatrixTest, NormalizeRows) {
  CorrelationMatrix m(2, 2);
  m.set(0, 0, 1.0);
  m.set(0, 1, 3.0);
  m.normalize_rows();
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.25);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.75);
  // Zero row untouched.
  EXPECT_DOUBLE_EQ(m.at(1, 0), 0.0);
}

TEST(CorrelationMatrixTest, RowArgmax) {
  CorrelationMatrix m(2, 3);
  m.set(0, 2, 0.6);
  m.set(0, 1, 0.4);
  EXPECT_EQ(m.row_argmax(0), 2);
  EXPECT_EQ(m.row_argmax(1), -1);
}

TEST(CorrelationMatrixTest, ToTextShowsPercentagesAndDots) {
  CorrelationMatrix m(2, 2);
  m.set(0, 0, 1.0);
  m.set(1, 1, 0.65);
  std::string text = m.to_text("A", "B");
  EXPECT_NE(text.find("A1"), std::string::npos);
  EXPECT_NE(text.find("B2"), std::string::npos);
  EXPECT_NE(text.find("100%"), std::string::npos);
  EXPECT_NE(text.find("65%"), std::string::npos);
  EXPECT_NE(text.find("."), std::string::npos);
}

}  // namespace
}  // namespace perftrack::tracking
