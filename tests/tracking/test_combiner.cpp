#include "tracking/combiner.hpp"

#include <gtest/gtest.h>

#include "testing/test_traces.hpp"

namespace perftrack::tracking {
namespace {

using perftrack::testing::MiniPhase;
using perftrack::testing::MiniTraceSpec;
using perftrack::testing::make_mini_trace;

cluster::ClusteringParams clustering() {
  cluster::ClusteringParams params;
  params.log_scale = {true, false};
  params.dbscan.eps = 0.05;
  params.dbscan.min_pts = 3;
  return params;
}

struct Pair {
  cluster::Frame fa, fb;
  PairTracking run(const TrackingParams& params = {}) const {
    std::vector<cluster::Frame> frames{fa, fb};
    ScaleNormalization scale =
        ScaleNormalization::fit(frames, {true, false});
    FrameAlignment align_a(fa, params.alignment_scores);
    FrameAlignment align_b(fb, params.alignment_scores);
    return track_pair(fa, align_a, fb, align_b, scale, params);
  }
};

Pair make_pair(const MiniTraceSpec& a, const MiniTraceSpec& b) {
  return Pair{cluster::build_frame(make_mini_trace(a), clustering()),
              cluster::build_frame(make_mini_trace(b), clustering())};
}

TEST(Combiner, IdenticalExperimentsTrackOneToOne) {
  MiniTraceSpec a;
  a.label = "A";
  a.phases = {MiniPhase{8e6, 1.0, {"p1", "x.c", 1}},
              MiniPhase{3e6, 1.5, {"p2", "x.c", 2}},
              MiniPhase{1e6, 0.5, {"p3", "x.c", 3}}};
  MiniTraceSpec b = a;
  b.label = "B";
  b.seed = 9;
  PairTracking result = make_pair(a, b).run();
  ASSERT_EQ(result.relations.size(), 3u);
  for (const Relation& rel : result.relations) EXPECT_TRUE(rel.univocal());
  EXPECT_TRUE(result.relations.unmatched_left.empty());
  EXPECT_TRUE(result.relations.unmatched_right.empty());
}

TEST(Combiner, PerTaskSplitYieldsWideRelationViaSpmd) {
  // The WRF region-4 situation: one phase splits per-task in B; the SPMD
  // evaluator merges the two halves so tracking reports A1 = {B_i, B_j}.
  MiniTraceSpec a;
  a.label = "A";
  a.tasks = 8;
  a.phases = {MiniPhase{8e6, 1.0, {"p1", "x.c", 1}},
              MiniPhase{1e6, 1.5, {"p2", "x.c", 2}}};
  MiniTraceSpec b = a;
  b.label = "B";
  b.phases[0].split_fraction = 0.5;
  b.phases[0].split_instr_factor = 1.7;
  Pair pair = make_pair(a, b);
  ASSERT_EQ(pair.fb.object_count(), 3u);
  PairTracking result = pair.run();
  ASSERT_EQ(result.relations.size(), 2u);
  std::ptrdiff_t split_rel = result.relations.find_by_left(0);
  ASSERT_GE(split_rel, 0);
  EXPECT_EQ(result.relations.relations[static_cast<std::size_t>(split_rel)]
                .right.size(),
            2u);
}

TEST(Combiner, CallstackPrunesCoincidentalNeighbours) {
  // Two phases of B sit nearby in space, but only one shares A's source
  // reference; the other must not join the relation.
  MiniTraceSpec a;
  a.label = "A";
  a.phases = {MiniPhase{8e6, 1.0, {"mine", "x.c", 1}},
              MiniPhase{1e6, 2.0, {"other", "x.c", 50}}};
  MiniTraceSpec b;
  b.label = "B";
  b.phases = {MiniPhase{8.6e6, 1.02, {"foreign", "y.c", 9}},
              MiniPhase{7.4e6, 0.98, {"mine", "x.c", 1}},
              MiniPhase{1e6, 2.0, {"other", "x.c", 50}}};
  PairTracking result = make_pair(a, b).run();
  // A0 ("mine") must relate only to the B object with the same reference.
  std::ptrdiff_t rel = result.relations.find_by_left(0);
  ASSERT_GE(rel, 0);
  const Relation& r =
      result.relations.relations[static_cast<std::size_t>(rel)];
  EXPECT_EQ(r.left, (std::set<ObjectId>{0}));
  ASSERT_EQ(r.right.size(), 1u);
  // The foreign object stays unmatched.
  EXPECT_EQ(result.relations.unmatched_right.size(), 1u);
}

// The WRF filters situation (§3.1): two same-line phases move a long way
// down the IPC axis between experiments, so the nearest-neighbour
// cross-classification maps BOTH old clusters onto the nearer new one and
// the farther new cluster is only reachable via the sequence refinement.
Pair long_mover_pair() {
  MiniTraceSpec a;
  a.label = "A";
  a.tasks = 8;
  a.phases = {MiniPhase{40e6, 1.2, {"anchor", "x.c", 9}},
              MiniPhase{8e6, 0.60, {"twin", "x.c", 7}},
              MiniPhase{8e6, 0.45, {"twin", "x.c", 7}}};
  MiniTraceSpec b = a;
  b.label = "B";
  b.seed = 4;
  b.phases[1].ipc = 0.48;  // both twins degraded ~20%
  b.phases[2].ipc = 0.33;
  return make_pair(a, b);
}

TEST(Combiner, SequenceSplitsWideRelationOfSameLinePhases) {
  PairTracking result = long_mover_pair().run();
  // All three relations resolve univocally thanks to the sequence pass.
  ASSERT_EQ(result.relations.size(), 3u);
  for (const Relation& rel : result.relations)
    EXPECT_TRUE(rel.univocal()) << rel.describe();
  EXPECT_TRUE(result.relations.unmatched_right.empty());
}

TEST(Combiner, DisabledSequenceKeepsWideRelation) {
  TrackingParams params;
  params.use_sequence = false;
  PairTracking result = long_mover_pair().run(params);
  // Without the refinement the twins stay grouped (or one side unmatched).
  bool degraded = !result.relations.unmatched_right.empty();
  for (const Relation& rel : result.relations)
    if (!rel.univocal()) degraded = true;
  EXPECT_TRUE(degraded);
}

TEST(Combiner, EvaluatorArtefactsExposed) {
  MiniTraceSpec a;
  a.label = "A";
  a.phases = {MiniPhase{8e6, 1.0, {"p1", "x.c", 1}},
              MiniPhase{1e6, 1.5, {"p2", "x.c", 2}}};
  MiniTraceSpec b = a;
  b.label = "B";
  PairTracking result = make_pair(a, b).run();
  EXPECT_EQ(result.displacement.a_to_b.rows(), 2u);
  EXPECT_EQ(result.spmd_a.rows(), 2u);
  EXPECT_EQ(result.spmd_b.rows(), 2u);
  EXPECT_EQ(result.callstack.rows(), 2u);
  EXPECT_EQ(result.sequence.rows(), 2u);
}

}  // namespace
}  // namespace perftrack::tracking
