#include "common/log.hpp"

#include <gtest/gtest.h>

namespace perftrack {
namespace {

TEST(LogTest, LevelRoundTrip) {
  LogLevel original = log_level();
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  set_log_level(original);
}

TEST(LogTest, SuppressedMessagesDoNotFormat) {
  LogLevel original = log_level();
  set_log_level(LogLevel::Off);
  // Streaming into a suppressed LogLine must be a no-op (and not crash).
  PT_LOG(Debug) << "dropped " << 42;
  PT_LOG(Error) << "also dropped " << 3.14;
  set_log_level(original);
}

TEST(LogTest, DefaultLevelIsWarnOrConfigured) {
  // The library default keeps Info quiet.
  EXPECT_GE(static_cast<int>(log_level()), static_cast<int>(LogLevel::Warn));
}

}  // namespace
}  // namespace perftrack
