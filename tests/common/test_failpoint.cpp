#include "common/failpoint.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace perftrack {
namespace {

class FailpointTest : public ::testing::Test {
protected:
  void SetUp() override { failpoint::clear(); }
  void TearDown() override { failpoint::clear(); }
};

TEST_F(FailpointTest, DisarmedSiteIsFree) {
  EXPECT_FALSE(failpoint::any_active());
  EXPECT_NO_THROW(PT_FAILPOINT("nothing_armed"));
  EXPECT_EQ(failpoint::hits("nothing_armed"), 0u);
}

TEST_F(FailpointTest, ErrorActionAlwaysThrows) {
  failpoint::activate("load_trace", "error");
  EXPECT_TRUE(failpoint::any_active());
  EXPECT_THROW(PT_FAILPOINT("load_trace"), InjectedFault);
  EXPECT_THROW(PT_FAILPOINT("load_trace"), InjectedFault);
  EXPECT_EQ(failpoint::hits("load_trace"), 2u);
}

TEST_F(FailpointTest, UnarmedNameUnaffectedWhileOthersArmed) {
  failpoint::activate("load_trace", "error");
  EXPECT_NO_THROW(PT_FAILPOINT("save_trace"));
}

TEST_F(FailpointTest, InjectedFaultIsAnError) {
  failpoint::activate("x", "error");
  try {
    PT_FAILPOINT("x");
    FAIL() << "expected InjectedFault";
  } catch (const Error& error) {
    EXPECT_NE(std::string(error.what()).find("injected fault"),
              std::string::npos);
    EXPECT_NE(std::string(error.what()).find("'x'"), std::string::npos);
  }
}

TEST_F(FailpointTest, PercentActionIsDeterministicallyThinned) {
  failpoint::activate("dbscan", "30%");
  int failures = 0;
  for (int i = 0; i < 100; ++i) {
    try {
      PT_FAILPOINT("dbscan");
    } catch (const InjectedFault&) {
      ++failures;
    }
  }
  EXPECT_EQ(failures, 30);

  // Determinism: the same schedule replays after a reset.
  failpoint::clear();
  failpoint::activate("dbscan", "30%");
  int replay = 0;
  for (int i = 0; i < 100; ++i) {
    try {
      PT_FAILPOINT("dbscan");
    } catch (const InjectedFault&) {
      ++replay;
    }
  }
  EXPECT_EQ(replay, failures);
}

TEST_F(FailpointTest, ZeroPercentNeverFires) {
  failpoint::activate("dbscan", "0%");
  for (int i = 0; i < 50; ++i) EXPECT_NO_THROW(PT_FAILPOINT("dbscan"));
}

TEST_F(FailpointTest, HundredPercentAlwaysFires) {
  failpoint::activate("dbscan", "100%");
  for (int i = 0; i < 5; ++i)
    EXPECT_THROW(PT_FAILPOINT("dbscan"), InjectedFault);
}

TEST_F(FailpointTest, HitListFiresOnExactHits) {
  failpoint::activate("cluster_experiment", "@3,7");
  for (int hit = 1; hit <= 10; ++hit) {
    if (hit == 3 || hit == 7)
      EXPECT_THROW(PT_FAILPOINT("cluster_experiment"), InjectedFault)
          << "hit " << hit;
    else
      EXPECT_NO_THROW(PT_FAILPOINT("cluster_experiment")) << "hit " << hit;
  }
  EXPECT_EQ(failpoint::hits("cluster_experiment"), 10u);
}

TEST_F(FailpointTest, ConfigureParsesMultipleEntriesAndHitLists) {
  failpoint::configure("load_trace=error,cluster_experiment=@2,4,dbscan=50%");
  EXPECT_THROW(PT_FAILPOINT("load_trace"), InjectedFault);
  EXPECT_NO_THROW(PT_FAILPOINT("cluster_experiment"));  // hit 1
  EXPECT_THROW(PT_FAILPOINT("cluster_experiment"), InjectedFault);  // hit 2
  EXPECT_NO_THROW(PT_FAILPOINT("cluster_experiment"));  // hit 3
  EXPECT_THROW(PT_FAILPOINT("cluster_experiment"), InjectedFault);  // hit 4
  // 50% thinning: the running failure quota first increments at hit 2.
  EXPECT_NO_THROW(PT_FAILPOINT("dbscan"));
  EXPECT_THROW(PT_FAILPOINT("dbscan"), InjectedFault);
}

TEST_F(FailpointTest, MalformedActionThrows) {
  EXPECT_THROW(failpoint::activate("x", "banana"), Error);
  EXPECT_THROW(failpoint::activate("x", "150%"), Error);
  EXPECT_THROW(failpoint::activate("x", "@"), Error);
  EXPECT_THROW(failpoint::activate("x", "@1,frog"), Error);
  EXPECT_THROW(failpoint::configure("no_equals_sign"), Error);
}

TEST_F(FailpointTest, ClearDisarmsAndResetsCounters) {
  failpoint::activate("x", "error");
  try {
    PT_FAILPOINT("x");
  } catch (const InjectedFault&) {
  }
  failpoint::clear();
  EXPECT_FALSE(failpoint::any_active());
  EXPECT_NO_THROW(PT_FAILPOINT("x"));
  EXPECT_EQ(failpoint::hits("x"), 0u);
}

}  // namespace
}  // namespace perftrack
