#include "common/table.hpp"

#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>

#include "common/error.hpp"

namespace perftrack {
namespace {

TEST(TableTest, RequiresColumns) {
  EXPECT_THROW(Table({}), PreconditionError);
}

TEST(TableTest, AddRowChecksWidth) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), PreconditionError);
  t.add_row({"1", "2"});
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_EQ(t.at(0, 1), "2");
}

TEST(TableTest, IncrementalRows) {
  Table t({"name", "value", "count"});
  t.begin_row();
  t.cell("x");
  t.cell(3.14159, 2);
  t.cell(std::size_t{7});
  std::string text = t.to_text();
  EXPECT_NE(text.find("3.14"), std::string::npos);
  EXPECT_NE(text.find("7"), std::string::npos);
}

TEST(TableTest, IncompleteRowThrowsOnRender) {
  Table t({"a", "b"});
  t.begin_row();
  t.cell("only one");
  EXPECT_THROW(t.to_text(), PreconditionError);
}

TEST(TableTest, TooManyCellsThrows) {
  Table t({"a"});
  t.begin_row();
  t.cell("1");
  EXPECT_THROW(t.cell("2"), PreconditionError);
}

TEST(TableTest, CellOutsideRowThrows) {
  Table t({"a"});
  EXPECT_THROW(t.cell("x"), PreconditionError);
}

TEST(TableTest, TextAlignsColumns) {
  Table t({"h", "header2"});
  t.add_row({"longvalue", "x"});
  std::string text = t.to_text();
  // Header line, underline, one data row.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
  EXPECT_NE(text.find("---------"), std::string::npos);
}

TEST(TableTest, CsvEscaping) {
  Table t({"plain", "with,comma"});
  t.add_row({"a\"b", "c,d"});
  std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"a\"\"b\""), std::string::npos);
  EXPECT_NE(csv.find("\"c,d\""), std::string::npos);
}

TEST(TableTest, SaveCsvRoundTrip) {
  Table t({"k", "v"});
  t.add_row({"answer", "42"});
  std::string path = ::testing::TempDir() + "/pt_table_test.csv";
  t.save_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "k,v");
  std::getline(in, line);
  EXPECT_EQ(line, "answer,42");
  std::remove(path.c_str());
}

TEST(TableTest, SaveCsvBadPathThrows) {
  Table t({"a"});
  EXPECT_THROW(t.save_csv("/nonexistent-dir-xyz/file.csv"), IoError);
}

TEST(TableTest, AtOutOfRangeThrows) {
  Table t({"a"});
  t.add_row({"1"});
  EXPECT_THROW(t.at(1, 0), PreconditionError);
  EXPECT_THROW(t.at(0, 1), PreconditionError);
}

}  // namespace
}  // namespace perftrack
