#include "common/diagnostics.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"

namespace perftrack {
namespace {

TEST(DiagnosticsTest, DefaultConstructedIsStrict) {
  Diagnostics diags;
  EXPECT_FALSE(diags.is_lenient());
  EXPECT_TRUE(diags.ok());
  EXPECT_TRUE(diags.empty());
}

TEST(DiagnosticsTest, StrictErrorThrowsParseErrorWithLocation) {
  Diagnostics diags = Diagnostics::strict();
  diags.set_file("trace.ptt");
  try {
    diags.error(12, "bad-number", "bad number: xyz");
    FAIL() << "expected ParseError";
  } catch (const ParseError& error) {
    std::string what = error.what();
    EXPECT_NE(what.find("line 12"), std::string::npos) << what;
    EXPECT_NE(what.find("bad number: xyz"), std::string::npos) << what;
  }
}

TEST(DiagnosticsTest, StrictWarningDoesNotThrow) {
  Diagnostics diags = Diagnostics::strict();
  diags.warning(3, "duplicate-record", "duplicate app record");
  EXPECT_EQ(diags.warning_count(), 1u);
  EXPECT_TRUE(diags.ok());
}

TEST(DiagnosticsTest, LenientAccumulatesErrors) {
  Diagnostics diags = Diagnostics::lenient();
  diags.set_file("x.ptt");
  diags.error(1, "bad-number", "bad number: a");
  diags.error(2, "bad-number", "bad number: b");
  diags.warning(3, "unknown-record", "skipping");
  EXPECT_EQ(diags.error_count(), 2u);
  EXPECT_EQ(diags.warning_count(), 1u);
  EXPECT_FALSE(diags.ok());
  ASSERT_EQ(diags.entries().size(), 3u);
  EXPECT_EQ(diags.entries()[0].code, "bad-number");
  EXPECT_EQ(diags.entries()[0].line, 1);
  EXPECT_EQ(diags.entries()[0].file, "x.ptt");
  EXPECT_EQ(diags.entries()[2].severity, Severity::Warning);
}

TEST(DiagnosticsTest, DiagnosticToStringFormat) {
  Diagnostic d;
  d.severity = Severity::Error;
  d.file = "trace.ptt";
  d.line = 12;
  d.code = "bad-number";
  d.message = "bad number: xyz";
  EXPECT_EQ(d.to_string(), "error: trace.ptt:12: [bad-number] bad number: xyz");
}

TEST(DiagnosticsTest, AbsoluteErrorBudgetExhaustionThrows) {
  ErrorBudget budget;
  budget.max_errors = 2;
  Diagnostics diags = Diagnostics::lenient(budget);
  diags.error(1, "bad-number", "a");
  diags.error(2, "bad-number", "b");
  EXPECT_THROW(diags.error(3, "bad-number", "c"), ParseError);
}

TEST(DiagnosticsTest, FractionBudgetCheckedAtFinish) {
  ErrorBudget budget;
  budget.max_error_fraction = 0.25;
  budget.min_records_for_fraction = 8;
  Diagnostics diags = Diagnostics::lenient(budget);
  for (int i = 0; i < 10; ++i) diags.count_record();
  diags.error(1, "bad-burst", "a");
  diags.error(2, "bad-burst", "b");
  diags.error(3, "bad-burst", "c");
  EXPECT_THROW(diags.finish(), ParseError);
}

TEST(DiagnosticsTest, FractionBudgetSkippedBelowMinRecords) {
  ErrorBudget budget;
  budget.max_error_fraction = 0.25;
  budget.min_records_for_fraction = 8;
  Diagnostics diags = Diagnostics::lenient(budget);
  diags.count_record();
  diags.count_record();
  diags.error(1, "bad-burst", "half the file is bad");
  EXPECT_NO_THROW(diags.finish());
}

TEST(DiagnosticsTest, SummaryMentionsCounts) {
  Diagnostics diags = Diagnostics::lenient();
  diags.set_file("trace.ptt");
  diags.count_record();
  diags.error(1, "bad-number", "a");
  diags.warning(2, "unknown-record", "b");
  std::string summary = diags.summary();
  EXPECT_NE(summary.find("1 error"), std::string::npos) << summary;
  EXPECT_NE(summary.find("1 warning"), std::string::npos) << summary;
  EXPECT_NE(summary.find("trace.ptt"), std::string::npos) << summary;
}

TEST(DiagnosticsTest, ToStringRendersOneLinePerEntry) {
  Diagnostics diags = Diagnostics::lenient();
  diags.error(1, "a", "x");
  diags.warning(2, "b", "y");
  std::string text = diags.to_string();
  EXPECT_NE(text.find("[a]"), std::string::npos);
  EXPECT_NE(text.find("[b]"), std::string::npos);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
}

}  // namespace
}  // namespace perftrack
