#include "common/thread_pool.hpp"

#include <atomic>
#include <gtest/gtest.h>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace perftrack {
namespace {

/// Exception carrying the index that threw, for propagation-order tests.
struct IndexedError : std::runtime_error {
  explicit IndexedError(std::size_t i)
      : std::runtime_error("task " + std::to_string(i)), index(i) {}
  std::size_t index;
};

TEST(ThreadPoolTest, SubmitReturnsValueThroughFuture) {
  ThreadPool pool(4);
  auto future = pool.submit([] { return 42; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, AllSubmittedTasksComplete) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i)
    futures.push_back(pool.submit([&done] { ++done; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i)
      pool.submit([&done] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++done;
      });
  }  // destructor joins after the queue is empty
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, ParallelForEmptyAndReversedRangesAreNoOps) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(3, 3, [&](std::size_t) { ++calls; });
  pool.parallel_for(5, 2, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, SubmitExceptionLandsInFuture) {
  ThreadPool pool(2);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForPropagatesLowestIndexException) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool pool(threads);
    try {
      pool.parallel_for(0, 64, [](std::size_t i) {
        if (i >= 17) throw IndexedError(i);
      });
      FAIL() << "expected an exception (threads=" << threads << ")";
    } catch (const IndexedError& error) {
      // Regardless of which task finished first, the earliest failing
      // index is the one reported.
      EXPECT_EQ(error.index, 17u) << "threads=" << threads;
    }
  }
}

TEST(ThreadPoolTest, ParallelForFinishesAllIndicesBeforeThrowing) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(128);
  EXPECT_THROW(pool.parallel_for(0, hits.size(),
                                 [&](std::size_t i) {
                                   ++hits[i];
                                   if (i % 3 == 0) throw IndexedError(i);
                                 }),
               IndexedError);
  // No task was abandoned: state the caller owns is fully settled.
  int total = 0;
  for (auto& h : hits) total += h.load();
  EXPECT_EQ(total, 128);
}

TEST(ThreadPoolTest, InlinePoolRunsOnCallerThreadInOrder) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::vector<int> order;
  const auto caller = std::this_thread::get_id();
  for (int i = 0; i < 5; ++i)
    pool.submit([&, i] {
      EXPECT_EQ(std::this_thread::get_id(), caller);
      order.push_back(i);  // no synchronisation needed: inline == serial
    });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, ReentrantSubmitRunsInlineWithoutDeadlock) {
  // Every worker blocks on a task it submitted itself; without the
  // reentrancy guard the inner tasks would sit behind the outer ones in
  // the queue forever.
  ThreadPool pool(2);
  std::vector<std::future<int>> outer;
  for (int i = 0; i < 8; ++i)
    outer.push_back(pool.submit([&pool, i] {
      auto inner = pool.submit([i] { return i * 10; });
      return inner.get() + 1;
    }));
  for (int i = 0; i < 8; ++i) EXPECT_EQ(outer[i].get(), i * 10 + 1);
}

TEST(ThreadPoolTest, NestedParallelForCompletes) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(0, 8, [&](std::size_t i) {
    pool.parallel_for(0, 8, [&](std::size_t j) { ++hits[i * 8 + j]; });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ThreadCountAndResolve) {
  EXPECT_EQ(ThreadPool(0).thread_count(), 1u);
  EXPECT_EQ(ThreadPool(1).thread_count(), 1u);
  EXPECT_EQ(ThreadPool(3).thread_count(), 3u);
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
  EXPECT_EQ(ThreadPool::resolve(0), ThreadPool::default_thread_count());
  EXPECT_EQ(ThreadPool::resolve(7), 7u);
}

}  // namespace
}  // namespace perftrack
