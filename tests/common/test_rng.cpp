#include "common/rng.hpp"

#include <gtest/gtest.h>

namespace perftrack {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 50; ++i)
    if (a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0)) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(RngTest, DeriveIsDeterministicAndIndependent) {
  Rng parent(7);
  Rng c1 = parent.derive("phase", 3);
  Rng c2 = Rng(7).derive("phase", 3);
  EXPECT_EQ(c1.seed(), c2.seed());
  // Deriving does not consume parent randomness.
  Rng p1(7), p2(7);
  (void)p1.derive("x", 0);
  EXPECT_DOUBLE_EQ(p1.uniform(0.0, 1.0), p2.uniform(0.0, 1.0));
}

TEST(RngTest, DeriveTagAndIndexMatter) {
  Rng parent(7);
  EXPECT_NE(parent.derive("a", 0).seed(), parent.derive("b", 0).seed());
  EXPECT_NE(parent.derive("a", 0).seed(), parent.derive("a", 1).seed());
}

TEST(RngTest, UniformBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.uniform_int(1, 3);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 3);
    saw_lo |= v == 1;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalZeroStddevReturnsMean) {
  Rng rng(3);
  EXPECT_DOUBLE_EQ(rng.normal(5.0, 0.0), 5.0);
  EXPECT_DOUBLE_EQ(rng.normal(5.0, -1.0), 5.0);
}

TEST(RngTest, NormalClampedStaysInBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.normal_clamped(0.0, 10.0, -1.0, 1.0);
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(RngTest, JitterPositiveCentredOnOne) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 5000; ++i) {
    double v = rng.jitter(0.05);
    EXPECT_GT(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 5000.0, 1.0, 0.01);
  EXPECT_DOUBLE_EQ(rng.jitter(0.0), 1.0);
}

TEST(RngTest, ChanceRoughProbability) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i)
    if (rng.chance(0.25)) ++hits;
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

}  // namespace
}  // namespace perftrack
