#include "common/stats.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace perftrack {
namespace {

TEST(RunningStats, EmptyIsAllZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(99);
  RunningStats all, first, second;
  for (int i = 0; i < 500; ++i) {
    double v = rng.normal(10.0, 3.0);
    all.add(v);
    (i < 200 ? first : second).add(v);
  }
  first.merge(second);
  EXPECT_EQ(first.count(), all.count());
  EXPECT_NEAR(first.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(first.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(first.min(), all.min());
  EXPECT_DOUBLE_EQ(first.max(), all.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  RunningStats a_copy = a;
  a.merge(b);  // merging empty changes nothing
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a_copy);  // merging into empty copies
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Percentile, KnownValues) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 1.75);
}

TEST(Percentile, EmptyAndSingle) {
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
  std::vector<double> one{7.0};
  EXPECT_DOUBLE_EQ(percentile(one, 10.0), 7.0);
}

TEST(Percentile, RejectsOutOfRange) {
  std::vector<double> v{1.0};
  EXPECT_THROW(percentile(v, -1.0), PreconditionError);
  EXPECT_THROW(percentile(v, 101.0), PreconditionError);
}

TEST(Percentile, MonotoneInP) {
  Rng rng(5);
  std::vector<double> v;
  for (int i = 0; i < 101; ++i) v.push_back(rng.uniform(0.0, 100.0));
  double prev = percentile(v, 0.0);
  for (double p = 5.0; p <= 100.0; p += 5.0) {
    double cur = percentile(v, p);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(MeanSum, Basics) {
  std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean_of(v), 2.0);
  EXPECT_DOUBLE_EQ(sum_of(v), 6.0);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(sum_of({}), 0.0);
}

TEST(WeightedMean, Weighted) {
  std::vector<double> v{1.0, 3.0};
  std::vector<double> w{3.0, 1.0};
  EXPECT_DOUBLE_EQ(weighted_mean(v, w), 1.5);
}

TEST(WeightedMean, ZeroWeightsGiveZero) {
  std::vector<double> v{1.0, 3.0};
  std::vector<double> w{0.0, 0.0};
  EXPECT_DOUBLE_EQ(weighted_mean(v, w), 0.0);
}

TEST(WeightedMean, RejectsLengthMismatch) {
  std::vector<double> v{1.0, 3.0};
  std::vector<double> w{1.0};
  EXPECT_THROW(weighted_mean(v, w), PreconditionError);
}

TEST(RelativeChange, Basics) {
  EXPECT_DOUBLE_EQ(relative_change(100.0, 110.0), 0.10);
  EXPECT_DOUBLE_EQ(relative_change(100.0, 80.0), -0.20);
  EXPECT_DOUBLE_EQ(relative_change(0.0, 5.0), 0.0);
}

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.5);   // bin 4
  h.add(-3.0);  // clamped to bin 0
  h.add(42.0);  // clamped to bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_high(4), 10.0);
}

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), PreconditionError);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), PreconditionError);
}

// Property: variance computed by RunningStats matches the two-pass formula
// across random inputs.
class RunningStatsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RunningStatsProperty, MatchesTwoPassVariance) {
  Rng rng(GetParam());
  std::vector<double> values;
  RunningStats s;
  int n = static_cast<int>(rng.uniform_int(2, 300));
  for (int i = 0; i < n; ++i) {
    double v = rng.normal(rng.uniform(-50.0, 50.0), 5.0);
    values.push_back(v);
    s.add(v);
  }
  double mean = mean_of(values);
  double var = 0.0;
  for (double v : values) var += (v - mean) * (v - mean);
  var /= static_cast<double>(values.size());
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-7 * std::max(1.0, var));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RunningStatsProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace perftrack
