#include "common/strings.hpp"

#include <gtest/gtest.h>

namespace perftrack {
namespace {

TEST(Split, Basic) {
  auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, KeepsEmptyFields) {
  auto parts = split(",a,,b,", ',');
  ASSERT_EQ(parts.size(), 5u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[4], "");
}

TEST(Split, NoDelimiter) {
  auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Split, EmptyInput) {
  auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim("hello"), "hello");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" a b "), "a b");
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(starts_with("burst 1 2", "burst "));
  EXPECT_FALSE(starts_with("burs", "burst"));
  EXPECT_TRUE(starts_with("x", ""));
  EXPECT_FALSE(starts_with("", "x"));
}

TEST(FormatDouble, Decimals) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(3.0, 0), "3");
  EXPECT_EQ(format_double(-1.5, 1), "-1.5");
}

TEST(FormatSi, Scales) {
  EXPECT_EQ(format_si(12.3e9), "12.3G");
  EXPECT_EQ(format_si(6.8e6), "6.8M");
  EXPECT_EQ(format_si(4500.0), "4.5K");
  EXPECT_EQ(format_si(42.0), "42.0");
  EXPECT_EQ(format_si(-6.8e6), "-6.8M");
}

TEST(FormatPercent, SignedPercentages) {
  EXPECT_EQ(format_percent(0.049), "+4.9%");
  EXPECT_EQ(format_percent(-0.201), "-20.1%");
  EXPECT_EQ(format_percent(0.0), "0.0%");
}

TEST(Join, Basics) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({"solo"}, ","), "solo");
  EXPECT_EQ(join({}, ","), "");
}

}  // namespace
}  // namespace perftrack
