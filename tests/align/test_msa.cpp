#include "align/msa.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace perftrack::align {
namespace {

std::vector<Symbol> seq(std::initializer_list<int> values) {
  return std::vector<Symbol>(values.begin(), values.end());
}

std::vector<Symbol> strip_gaps(std::span<const Symbol> aligned) {
  std::vector<Symbol> out;
  for (Symbol s : aligned)
    if (s != kGap) out.push_back(s);
  return out;
}

TEST(StarAlign, EmptyInput) {
  MultipleAlignment msa = star_align({});
  EXPECT_EQ(msa.sequence_count(), 0u);
  EXPECT_EQ(msa.column_count(), 0u);
  EXPECT_TRUE(msa.consensus().empty());
}

TEST(StarAlign, IdenticalSequences) {
  std::vector<std::vector<Symbol>> seqs(5, seq({0, 1, 2, 3}));
  MultipleAlignment msa = star_align(seqs);
  EXPECT_EQ(msa.sequence_count(), 5u);
  EXPECT_EQ(msa.column_count(), 4u);
  for (std::size_t s = 0; s < 5; ++s)
    EXPECT_EQ(strip_gaps(msa.row(s)), seqs[s]);
  EXPECT_EQ(msa.consensus(), seq({0, 1, 2, 3}));
}

TEST(StarAlign, OneSequenceMissingAPhase) {
  std::vector<std::vector<Symbol>> seqs{
      seq({0, 1, 2, 3}), seq({0, 1, 2, 3}), seq({0, 2, 3})};
  MultipleAlignment msa = star_align(seqs);
  EXPECT_EQ(msa.column_count(), 4u);
  // The short row gets a gap at the missing position.
  EXPECT_EQ(msa.row(2)[1], kGap);
  // Majority vote still reconstructs the full phase ladder.
  EXPECT_EQ(msa.consensus(), seq({0, 1, 2, 3}));
}

TEST(StarAlign, SymbolSubstitutionKeepsColumns) {
  // Two tasks execute phase 1, one executes phase 7 at the same position —
  // the bimodal-split situation the SPMD evaluator relies on.
  std::vector<std::vector<Symbol>> seqs{
      seq({0, 1, 2}), seq({0, 1, 2}), seq({0, 7, 2})};
  MultipleAlignment msa = star_align(seqs);
  EXPECT_EQ(msa.column_count(), 3u);
  auto column = msa.column(1);
  EXPECT_EQ(column[0], 1);
  EXPECT_EQ(column[2], 7);
  EXPECT_EQ(msa.consensus(), seq({0, 1, 2}));
}

TEST(StarAlign, EmptyMemberSequenceBecomesAllGaps) {
  std::vector<std::vector<Symbol>> seqs{seq({1, 2, 3}), {}};
  MultipleAlignment msa = star_align(seqs);
  EXPECT_EQ(msa.column_count(), 3u);
  EXPECT_EQ(strip_gaps(msa.row(1)).size(), 0u);
}

TEST(StarAlign, ConsensusMajorityTieBreaksToSmallerSymbol) {
  std::vector<std::vector<Symbol>> seqs{seq({5}), seq({3})};
  MultipleAlignment msa = star_align(seqs);
  EXPECT_EQ(msa.consensus(), seq({3}));
}

TEST(MultipleAlignmentTest, ColumnOutOfRangeThrows) {
  MultipleAlignment msa = star_align({seq({1, 2})});
  EXPECT_THROW(msa.column(2), perftrack::PreconditionError);
}

class MsaProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MsaProperty, RowsReduceToInputs) {
  perftrack::Rng rng(GetParam());
  // SPMD-like inputs: near-identical phase ladders with random dropouts and
  // occasional substitutions.
  std::vector<Symbol> ladder;
  int phases = static_cast<int>(rng.uniform_int(3, 10));
  int iterations = static_cast<int>(rng.uniform_int(2, 6));
  for (int it = 0; it < iterations; ++it)
    for (int p = 0; p < phases; ++p) ladder.push_back(p);

  std::vector<std::vector<Symbol>> seqs;
  int tasks = static_cast<int>(rng.uniform_int(2, 12));
  for (int t = 0; t < tasks; ++t) {
    std::vector<Symbol> s;
    for (Symbol sym : ladder) {
      if (rng.chance(0.05)) continue;  // dropout
      s.push_back(rng.chance(0.05) ? sym + 100 : sym);
    }
    seqs.push_back(std::move(s));
  }

  MultipleAlignment msa = star_align(seqs);
  ASSERT_EQ(msa.sequence_count(), seqs.size());
  for (std::size_t s = 0; s < seqs.size(); ++s) {
    EXPECT_EQ(strip_gaps(msa.row(s)), seqs[s]) << "row " << s;
    EXPECT_EQ(msa.row(s).size(), msa.column_count());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MsaProperty,
                         ::testing::Values(2, 4, 6, 8, 10, 12, 14, 16));

// --- Parallel and banded star-align byte identity -----------------------

std::vector<std::vector<Symbol>> spmd_inputs(std::uint64_t seed) {
  perftrack::Rng rng(seed);
  std::vector<Symbol> ladder;
  int phases = static_cast<int>(rng.uniform_int(3, 10));
  int iterations = static_cast<int>(rng.uniform_int(2, 8));
  for (int it = 0; it < iterations; ++it)
    for (int p = 0; p < phases; ++p) ladder.push_back(p);

  std::vector<std::vector<Symbol>> seqs;
  int tasks = static_cast<int>(rng.uniform_int(2, 16));
  for (int t = 0; t < tasks; ++t) {
    std::vector<Symbol> s;
    for (Symbol sym : ladder) {
      if (rng.chance(0.05)) continue;
      s.push_back(rng.chance(0.05) ? sym + 100 : sym);
    }
    seqs.push_back(std::move(s));
  }
  // Duplicates (the SPMD common case, deduplicated by the pair memo) and
  // an empty member (all-gap row) ride along.
  if (!seqs.empty()) seqs.push_back(seqs.front());
  seqs.push_back({});
  return seqs;
}

class StarAlignParallel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StarAlignParallel, PoolsOfAnySizeMatchSerial) {
  const std::vector<std::vector<Symbol>> seqs = spmd_inputs(GetParam());
  const MultipleAlignment serial = star_align(seqs);
  for (std::size_t threads : {2u, 4u}) {
    ThreadPool pool(threads);
    MultipleAlignment pooled =
        star_align(seqs, {}, AlignmentEngine::kAuto, &pool);
    EXPECT_EQ(pooled.rows(), serial.rows()) << threads << " threads";
    EXPECT_EQ(pooled.consensus(), serial.consensus());
  }
}

TEST_P(StarAlignParallel, BandedEngineUnderPoolMatchesFullSerial) {
  const std::vector<std::vector<Symbol>> seqs = spmd_inputs(GetParam());
  const MultipleAlignment full =
      star_align(seqs, {}, AlignmentEngine::kFull);
  ThreadPool pool(4);
  MultipleAlignment banded =
      star_align(seqs, {}, AlignmentEngine::kBanded, &pool);
  EXPECT_EQ(banded.rows(), full.rows());
  EXPECT_EQ(banded.consensus(), full.consensus());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StarAlignParallel,
                         ::testing::Values(3, 9, 21, 33, 47, 61));

TEST(StarAlignParallel, AllGapAndDuplicateMembersSurviveThePool) {
  // Empty members become all-gap rows, and duplicate members must land in
  // their own row positions, identically to the serial path.
  std::vector<std::vector<Symbol>> seqs{
      seq({0, 1, 2, 3}), {}, seq({0, 1, 2, 3}), seq({0, 2, 3}), {}};
  const MultipleAlignment serial = star_align(seqs);
  ThreadPool pool(4);
  const MultipleAlignment pooled =
      star_align(seqs, {}, AlignmentEngine::kAuto, &pool);
  EXPECT_EQ(pooled.rows(), serial.rows());
  ASSERT_EQ(pooled.sequence_count(), 5u);
  EXPECT_EQ(strip_gaps(pooled.row(1)).size(), 0u);
  EXPECT_EQ(strip_gaps(pooled.row(4)).size(), 0u);
  EXPECT_EQ(pooled.rows()[0], pooled.rows()[2]);
}

TEST(StarAlignParallel, NullAndSingleThreadPoolsAreTheSerialPath) {
  const std::vector<std::vector<Symbol>> seqs = spmd_inputs(77);
  const MultipleAlignment serial = star_align(seqs);
  ThreadPool one(1);
  EXPECT_EQ(star_align(seqs, {}, AlignmentEngine::kAuto, &one).rows(),
            serial.rows());
  EXPECT_EQ(star_align(seqs, {}, AlignmentEngine::kAuto, nullptr).rows(),
            serial.rows());
}

}  // namespace
}  // namespace perftrack::align
