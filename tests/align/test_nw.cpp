#include "align/nw.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace perftrack::align {
namespace {

std::vector<Symbol> seq(std::initializer_list<int> values) {
  return std::vector<Symbol>(values.begin(), values.end());
}

/// Symbols of `aligned` with gaps removed.
std::vector<Symbol> strip_gaps(const std::vector<Symbol>& aligned) {
  std::vector<Symbol> out;
  for (Symbol s : aligned)
    if (s != kGap) out.push_back(s);
  return out;
}

TEST(NeedlemanWunsch, IdenticalSequencesAlignWithoutGaps) {
  auto a = seq({1, 2, 3, 4, 5});
  PairAlignment result = needleman_wunsch(a, a);
  EXPECT_EQ(result.a, a);
  EXPECT_EQ(result.b, a);
  EXPECT_EQ(result.matches(), 5u);
  EXPECT_DOUBLE_EQ(result.identity(), 1.0);
  EXPECT_DOUBLE_EQ(result.score, 10.0);  // 5 matches x 2.0
}

TEST(NeedlemanWunsch, SingleInsertion) {
  auto a = seq({1, 2, 3});
  auto b = seq({1, 2, 9, 3});
  PairAlignment result = needleman_wunsch(a, b);
  ASSERT_EQ(result.length(), 4u);
  EXPECT_EQ(result.a, seq({1, 2, kGap, 3}));
  EXPECT_EQ(result.b, b);
  EXPECT_EQ(result.matches(), 3u);
}

TEST(NeedlemanWunsch, SingleDeletion) {
  auto a = seq({1, 2, 9, 3});
  auto b = seq({1, 2, 3});
  PairAlignment result = needleman_wunsch(a, b);
  EXPECT_EQ(result.b, seq({1, 2, kGap, 3}));
  EXPECT_EQ(result.matches(), 3u);
}

TEST(NeedlemanWunsch, EmptySequences) {
  PairAlignment both = needleman_wunsch({}, {});
  EXPECT_EQ(both.length(), 0u);
  EXPECT_DOUBLE_EQ(both.identity(), 1.0);

  auto a = seq({1, 2});
  PairAlignment left = needleman_wunsch(a, {});
  EXPECT_EQ(left.a, a);
  EXPECT_EQ(left.b, seq({kGap, kGap}));
  EXPECT_DOUBLE_EQ(left.identity(), 0.0);
}

TEST(NeedlemanWunsch, CompletelyDifferentSequences) {
  auto a = seq({1, 1, 1});
  auto b = seq({2, 2, 2});
  PairAlignment result = needleman_wunsch(a, b);
  EXPECT_EQ(result.matches(), 0u);
  EXPECT_DOUBLE_EQ(result.identity(), 0.0);
}

TEST(NeedlemanWunsch, CustomScoreFunction) {
  // Score function that treats 1<->7 as a match (cross-experiment ids).
  auto score = [](Symbol x, Symbol y) {
    bool match = (x == 1 && y == 7) || x == y;
    return match ? 2.0 : -1.0;
  };
  auto a = seq({1, 2, 3});
  auto b = seq({7, 2, 3});
  PairAlignment result = needleman_wunsch(a, b, score, -1.0);
  EXPECT_EQ(result.a, a);
  EXPECT_EQ(result.b, b);
  EXPECT_DOUBLE_EQ(result.score, 6.0);
}

TEST(NeedlemanWunsch, PrefersMatchesOverGaps) {
  auto a = seq({5, 1, 2, 3});
  auto b = seq({1, 2, 3, 6});
  PairAlignment result = needleman_wunsch(a, b);
  EXPECT_EQ(result.matches(), 3u);  // 1,2,3 aligned
}

class NwProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NwProperty, AlignmentPreservesInputSequences) {
  perftrack::Rng rng(GetParam());
  std::vector<Symbol> a, b;
  int la = static_cast<int>(rng.uniform_int(0, 60));
  int lb = static_cast<int>(rng.uniform_int(0, 60));
  for (int i = 0; i < la; ++i)
    a.push_back(static_cast<Symbol>(rng.uniform_int(0, 8)));
  for (int i = 0; i < lb; ++i)
    b.push_back(static_cast<Symbol>(rng.uniform_int(0, 8)));

  PairAlignment result = needleman_wunsch(a, b);
  // Both gapped rows have equal length and reduce to the originals.
  EXPECT_EQ(result.a.size(), result.b.size());
  EXPECT_EQ(strip_gaps(result.a), a);
  EXPECT_EQ(strip_gaps(result.b), b);
  // No column is gap-gap.
  for (std::size_t c = 0; c < result.length(); ++c)
    EXPECT_FALSE(result.a[c] == kGap && result.b[c] == kGap);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NwProperty,
                         ::testing::Values(3, 7, 19, 31, 57, 91));

// --- Engine knob and banded/full identity -------------------------------

void expect_same_alignment(const PairAlignment& x, const PairAlignment& y) {
  EXPECT_EQ(x.a, y.a);
  EXPECT_EQ(x.b, y.b);
  EXPECT_DOUBLE_EQ(x.score, y.score);
}

TEST(AlignmentEngineTest, ParseAndToStringRoundTrip) {
  for (AlignmentEngine engine :
       {AlignmentEngine::kAuto, AlignmentEngine::kFull,
        AlignmentEngine::kBanded}) {
    auto parsed = parse_alignment_engine(to_string(engine));
    ASSERT_TRUE(parsed.has_value()) << to_string(engine);
    EXPECT_EQ(*parsed, engine);
  }
  EXPECT_FALSE(parse_alignment_engine("diagonal").has_value());
  EXPECT_FALSE(parse_alignment_engine("").has_value());
  EXPECT_FALSE(parse_alignment_engine("Banded").has_value());
}

TEST(NeedlemanWunschBanded, DegenerateShapesMatchFull) {
  const std::vector<std::pair<std::vector<Symbol>, std::vector<Symbol>>>
      cases = {{{}, {}},         {seq({1}), {}},      {{}, seq({2})},
               {seq({1}), seq({1})}, {seq({1}), seq({2})},
               {seq({3, 3, 3}), seq({3})}};
  for (const auto& [a, b] : cases) {
    PairAlignment full = needleman_wunsch(a, b, {}, AlignmentEngine::kFull);
    PairAlignment banded =
        needleman_wunsch(a, b, {}, AlignmentEngine::kBanded);
    expect_same_alignment(full, banded);
  }
}

TEST(NeedlemanWunschBanded, ShiftedLadderForcesWideningAndStaysIdentical) {
  // b is a distant suffix of a: the optimum needs ~60 leading gaps, far
  // outside the initial half-width of the corridor, so the band must widen
  // (and re-run) several times before the certificate holds.
  std::vector<Symbol> a, b;
  for (int i = 0; i < 120; ++i) a.push_back(static_cast<Symbol>(i % 6));
  for (int i = 60; i < 120; ++i) b.push_back(static_cast<Symbol>(i % 6));
  PairAlignment full = needleman_wunsch(a, b, {}, AlignmentEngine::kFull);
  PairAlignment banded = needleman_wunsch(a, b, {}, AlignmentEngine::kBanded);
  expect_same_alignment(full, banded);
}

TEST(NeedlemanWunschBanded, CustomScoreMatchesFull) {
  // The evaluator_sequence scoring shape: pivot pairs reward, crossed
  // pivots punish, unknowns are mildly alignable.
  auto score = [](Symbol x, Symbol y) -> double {
    if (x == y) return 3.0;
    if ((x + y) % 2 == 0) return -2.0;
    return 0.5;
  };
  perftrack::Rng rng(41);
  std::vector<Symbol> a, b;
  for (int i = 0; i < 80; ++i) {
    Symbol s = static_cast<Symbol>(rng.uniform_int(0, 5));
    a.push_back(s);
    if (!rng.chance(0.1)) b.push_back(s);
  }
  PairAlignment full = needleman_wunsch(a, b, score, -1.0,
                                        AlignmentEngine::kFull, 3.0);
  PairAlignment banded = needleman_wunsch(a, b, score, -1.0,
                                          AlignmentEngine::kBanded, 3.0);
  expect_same_alignment(full, banded);
  // The two-argument overload is the full DP.
  expect_same_alignment(full, needleman_wunsch(a, b, score, -1.0));
}

TEST(NeedlemanWunschBanded, IneligibleScoringFallsBackToFull) {
  // gap >= s_max/2 breaks the certificate's monotonicity precondition, so
  // the banded engine must refuse to band and still answer correctly.
  AlignmentScores scores;
  scores.match = -1.0;
  scores.mismatch = -2.0;
  scores.gap = -0.4;  // >= s_max/2 = -0.5
  auto a = seq({1, 2, 3, 4});
  auto b = seq({1, 3, 4, 5});
  PairAlignment full = needleman_wunsch(a, b, scores, AlignmentEngine::kFull);
  PairAlignment banded =
      needleman_wunsch(a, b, scores, AlignmentEngine::kBanded);
  expect_same_alignment(full, banded);
}

class BandedProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BandedProperty, BandedAndAutoMatchFullOnSpmdLikeInputs) {
  perftrack::Rng rng(GetParam());
  // Near-identical phase ladders with dropouts, substitutions and a random
  // relative shift — the distribution the tracker feeds the engine, plus
  // enough adversarial drift to hit corridor contact.
  std::vector<Symbol> a, b;
  const int phases = static_cast<int>(rng.uniform_int(2, 10));
  const int len = static_cast<int>(rng.uniform_int(0, 150));
  const int shift = static_cast<int>(rng.uniform_int(0, 40));
  for (int i = 0; i < len; ++i) {
    Symbol s = static_cast<Symbol>(i % phases);
    if (!rng.chance(0.05)) a.push_back(s);
    if (i >= shift && !rng.chance(0.05))
      b.push_back(rng.chance(0.05) ? s + 100 : s);
  }
  AlignmentScores scores;
  scores.match = 1.0 + rng.uniform_int(0, 3);
  scores.mismatch = -static_cast<double>(rng.uniform_int(0, 2));
  scores.gap = -0.5 - rng.uniform_int(0, 2);

  PairAlignment full = needleman_wunsch(a, b, scores, AlignmentEngine::kFull);
  expect_same_alignment(
      full, needleman_wunsch(a, b, scores, AlignmentEngine::kBanded));
  expect_same_alignment(
      full, needleman_wunsch(a, b, scores, AlignmentEngine::kAuto));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BandedProperty,
                         ::testing::Values(5, 11, 23, 37, 53, 71, 89, 101,
                                           113, 127));

}  // namespace
}  // namespace perftrack::align
