#include "align/nw.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace perftrack::align {
namespace {

std::vector<Symbol> seq(std::initializer_list<int> values) {
  return std::vector<Symbol>(values.begin(), values.end());
}

/// Symbols of `aligned` with gaps removed.
std::vector<Symbol> strip_gaps(const std::vector<Symbol>& aligned) {
  std::vector<Symbol> out;
  for (Symbol s : aligned)
    if (s != kGap) out.push_back(s);
  return out;
}

TEST(NeedlemanWunsch, IdenticalSequencesAlignWithoutGaps) {
  auto a = seq({1, 2, 3, 4, 5});
  PairAlignment result = needleman_wunsch(a, a);
  EXPECT_EQ(result.a, a);
  EXPECT_EQ(result.b, a);
  EXPECT_EQ(result.matches(), 5u);
  EXPECT_DOUBLE_EQ(result.identity(), 1.0);
  EXPECT_DOUBLE_EQ(result.score, 10.0);  // 5 matches x 2.0
}

TEST(NeedlemanWunsch, SingleInsertion) {
  auto a = seq({1, 2, 3});
  auto b = seq({1, 2, 9, 3});
  PairAlignment result = needleman_wunsch(a, b);
  ASSERT_EQ(result.length(), 4u);
  EXPECT_EQ(result.a, seq({1, 2, kGap, 3}));
  EXPECT_EQ(result.b, b);
  EXPECT_EQ(result.matches(), 3u);
}

TEST(NeedlemanWunsch, SingleDeletion) {
  auto a = seq({1, 2, 9, 3});
  auto b = seq({1, 2, 3});
  PairAlignment result = needleman_wunsch(a, b);
  EXPECT_EQ(result.b, seq({1, 2, kGap, 3}));
  EXPECT_EQ(result.matches(), 3u);
}

TEST(NeedlemanWunsch, EmptySequences) {
  PairAlignment both = needleman_wunsch({}, {});
  EXPECT_EQ(both.length(), 0u);
  EXPECT_DOUBLE_EQ(both.identity(), 1.0);

  auto a = seq({1, 2});
  PairAlignment left = needleman_wunsch(a, {});
  EXPECT_EQ(left.a, a);
  EXPECT_EQ(left.b, seq({kGap, kGap}));
  EXPECT_DOUBLE_EQ(left.identity(), 0.0);
}

TEST(NeedlemanWunsch, CompletelyDifferentSequences) {
  auto a = seq({1, 1, 1});
  auto b = seq({2, 2, 2});
  PairAlignment result = needleman_wunsch(a, b);
  EXPECT_EQ(result.matches(), 0u);
  EXPECT_DOUBLE_EQ(result.identity(), 0.0);
}

TEST(NeedlemanWunsch, CustomScoreFunction) {
  // Score function that treats 1<->7 as a match (cross-experiment ids).
  auto score = [](Symbol x, Symbol y) {
    bool match = (x == 1 && y == 7) || x == y;
    return match ? 2.0 : -1.0;
  };
  auto a = seq({1, 2, 3});
  auto b = seq({7, 2, 3});
  PairAlignment result = needleman_wunsch(a, b, score, -1.0);
  EXPECT_EQ(result.a, a);
  EXPECT_EQ(result.b, b);
  EXPECT_DOUBLE_EQ(result.score, 6.0);
}

TEST(NeedlemanWunsch, PrefersMatchesOverGaps) {
  auto a = seq({5, 1, 2, 3});
  auto b = seq({1, 2, 3, 6});
  PairAlignment result = needleman_wunsch(a, b);
  EXPECT_EQ(result.matches(), 3u);  // 1,2,3 aligned
}

class NwProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NwProperty, AlignmentPreservesInputSequences) {
  perftrack::Rng rng(GetParam());
  std::vector<Symbol> a, b;
  int la = static_cast<int>(rng.uniform_int(0, 60));
  int lb = static_cast<int>(rng.uniform_int(0, 60));
  for (int i = 0; i < la; ++i)
    a.push_back(static_cast<Symbol>(rng.uniform_int(0, 8)));
  for (int i = 0; i < lb; ++i)
    b.push_back(static_cast<Symbol>(rng.uniform_int(0, 8)));

  PairAlignment result = needleman_wunsch(a, b);
  // Both gapped rows have equal length and reduce to the originals.
  EXPECT_EQ(result.a.size(), result.b.size());
  EXPECT_EQ(strip_gaps(result.a), a);
  EXPECT_EQ(strip_gaps(result.b), b);
  // No column is gap-gap.
  for (std::size_t c = 0; c < result.length(); ++c)
    EXPECT_FALSE(result.a[c] == kGap && result.b[c] == kGap);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NwProperty,
                         ::testing::Values(3, 7, 19, 31, 57, 91));

}  // namespace
}  // namespace perftrack::align
