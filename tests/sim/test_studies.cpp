#include "sim/studies.hpp"

#include <gtest/gtest.h>

namespace perftrack::sim {
namespace {

std::vector<std::size_t> object_counts(const Study& study) {
  std::vector<std::size_t> out;
  for (const auto& frame : study.frames()) out.push_back(frame.object_count());
  return out;
}

TEST(StudiesTest, CgpopStructure) {
  Study study = study_cgpop();
  ASSERT_EQ(study.traces.size(), 4u);
  EXPECT_EQ(study.traces[0]->attribute_or("platform", ""), "MareNostrum");
  EXPECT_EQ(study.traces[3]->attribute_or("compiler", ""), "ifort");
  // Two instruction trends, one split by IPC -> 3 relevant objects per
  // frame (paper Fig. 8).
  EXPECT_EQ(object_counts(study),
            (std::vector<std::size_t>{3, 3, 3, 3}));
}

TEST(StudiesTest, NasBtStructure) {
  Study study = study_nas_bt();
  ASSERT_EQ(study.traces.size(), 4u);
  EXPECT_EQ(study.traces[0]->attribute_or("class", ""), "W");
  EXPECT_EQ(object_counts(study),
            (std::vector<std::size_t>{6, 6, 6, 6}));
}

TEST(StudiesTest, HydrocStructure) {
  Study study = study_hydroc(9);
  ASSERT_EQ(study.traces.size(), 9u);
  EXPECT_EQ(study.traces[0]->attribute_or("block_side", ""), "4");
  EXPECT_EQ(study.traces[8]->attribute_or("block_side", ""), "1024");
  for (std::size_t count : object_counts(study)) EXPECT_EQ(count, 2u);
}

TEST(StudiesTest, MrGenesisStructure) {
  Study study = study_mrgenesis();
  ASSERT_EQ(study.traces.size(), 12u);
  EXPECT_EQ(study.traces[0]->attribute_or("tasks_per_node", ""), "1");
  EXPECT_EQ(study.traces[11]->attribute_or("tasks_per_node", ""), "12");
  for (std::size_t count : object_counts(study)) EXPECT_EQ(count, 2u);
}

TEST(StudiesTest, NasFtStructure) {
  Study study = study_nas_ft();
  ASSERT_EQ(study.traces.size(), 15u);
  for (std::size_t count : object_counts(study)) EXPECT_EQ(count, 2u);
}

TEST(StudiesTest, GromacsScalingStructure) {
  Study study = study_gromacs_scaling();
  ASSERT_EQ(study.traces.size(), 3u);
  EXPECT_EQ(study.traces[0]->num_tasks(), 32u);
  EXPECT_EQ(study.traces[2]->num_tasks(), 128u);
  for (std::size_t count : object_counts(study)) EXPECT_EQ(count, 5u);
}

TEST(StudiesTest, GromacsEvolutionStructure) {
  Study study = study_gromacs_evolution();
  ASSERT_EQ(study.traces.size(), 20u);
  // 4 phases + the bimodal non-bonded kernel -> 5 objects per frame.
  for (std::size_t count : object_counts(study)) EXPECT_EQ(count, 5u);
}

TEST(StudiesTest, GadgetStructure) {
  Study study = study_gadget();
  ASSERT_EQ(study.traces.size(), 2u);
  // 8 phases, one bimodal -> 9 objects.
  for (std::size_t count : object_counts(study)) EXPECT_EQ(count, 9u);
}

TEST(StudiesTest, EspressoStructure) {
  Study study = study_espresso();
  ASSERT_EQ(study.traces.size(), 2u);
  // 6 phases, three bimodal -> 9 objects.
  for (std::size_t count : object_counts(study)) EXPECT_EQ(count, 9u);
}

TEST(StudiesTest, AllStudiesMatchesTable2Order) {
  auto studies = all_studies();
  ASSERT_EQ(studies.size(), 10u);
  EXPECT_EQ(studies[0].name, "Gadget");
  EXPECT_EQ(studies[2].name, "WRF");
  EXPECT_EQ(studies[9].name, "Gromacs (evolution)");
  // Input-image counts of Table 2.
  std::vector<std::size_t> images;
  for (const auto& s : studies) images.push_back(s.traces.size());
  EXPECT_EQ(images, (std::vector<std::size_t>{2, 2, 2, 3, 4, 4, 12, 12, 15,
                                              20}));
}

TEST(StudiesTest, DefaultClusteringUsesPaperAxes) {
  cluster::ClusteringParams params = default_clustering();
  ASSERT_EQ(params.projection.metrics.size(), 2u);
  EXPECT_EQ(params.projection.metrics[0], trace::Metric::Instructions);
  EXPECT_EQ(params.projection.metrics[1], trace::Metric::Ipc);
  EXPECT_EQ(params.log_scale, (std::vector<bool>{true, false}));
}

}  // namespace
}  // namespace perftrack::sim
