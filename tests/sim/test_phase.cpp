#include "sim/phase.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "common/error.hpp"

namespace perftrack::sim {
namespace {

PhaseSpec base_phase() {
  PhaseSpec p;
  p.name = "p";
  p.base_instructions = 1e7;
  p.base_ipc = 1.5;
  p.working_set_kb = 100.0;
  return p;
}

Scenario scenario_with_tasks(std::uint32_t tasks) {
  Scenario s;
  s.num_tasks = tasks;
  s.platform = reference_platform();
  return s;
}

TEST(PhaseSpecTest, ReferenceScenarioIsIdentity) {
  PhaseSpec p = base_phase();
  auto s = p.evaluate(scenario_with_tasks(16), 0, 16.0);
  EXPECT_DOUBLE_EQ(s.instructions, 1e7);
  EXPECT_DOUBLE_EQ(s.ipc_ideal, 1.5);
  EXPECT_DOUBLE_EQ(s.working_set_kb, 100.0);
}

TEST(PhaseSpecTest, StrongScalingHalvesInstructions) {
  PhaseSpec p = base_phase();
  auto s = p.evaluate(scenario_with_tasks(32), 0, 16.0);
  EXPECT_DOUBLE_EQ(s.instructions, 5e6);
  EXPECT_DOUBLE_EQ(s.working_set_kb, 50.0);
}

TEST(PhaseSpecTest, TaskExponentsApply) {
  PhaseSpec p = base_phase();
  p.instr_task_exp = -0.93;
  p.ipc_task_exp = -0.322;
  auto s = p.evaluate(scenario_with_tasks(32), 0, 16.0);
  EXPECT_NEAR(s.instructions, 1e7 * std::pow(2.0, -0.93), 1.0);
  EXPECT_NEAR(s.ipc_ideal, 1.5 * std::pow(2.0, -0.322), 1e-9);
}

TEST(PhaseSpecTest, ProblemScaleApplies) {
  PhaseSpec p = base_phase();
  p.instr_scale_exp = 1.107;
  Scenario s = scenario_with_tasks(16);
  s.problem_scale = 4.0;
  auto sample = p.evaluate(s, 0, 16.0);
  EXPECT_NEAR(sample.instructions, 1e7 * std::pow(4.0, 1.107), 10.0);
  EXPECT_DOUBLE_EQ(sample.working_set_kb, 400.0);
}

TEST(PhaseSpecTest, CompilerAndPlatformFactors) {
  PhaseSpec p = base_phase();
  Scenario s = scenario_with_tasks(16);
  s.compiler = CompilerModel{"x", 0.64, 0.64};
  s.platform.ipc_factor = 2.0;
  s.platform.instr_factor = 0.5;
  auto sample = p.evaluate(s, 0, 16.0);
  EXPECT_DOUBLE_EQ(sample.instructions, 1e7 * 0.64 * 0.5);
  EXPECT_DOUBLE_EQ(sample.ipc_ideal, 1.5 * 0.64 * 2.0);
}

TEST(PhaseSpecTest, ImbalanceRampIsContinuousAndBounded) {
  PhaseSpec p = base_phase();
  p.imbalance_fraction = 0.5;
  p.imbalance_amount = 0.4;
  Scenario s = scenario_with_tasks(100);
  double prev = p.evaluate(s, 0, 16.0).instructions;
  // Strictly decreasing along the ramp, back to base beyond it.
  for (std::uint32_t task = 1; task < 50; ++task) {
    double cur = p.evaluate(s, task, 16.0).instructions;
    EXPECT_LT(cur, prev);
    prev = cur;
  }
  double base = 1e7 * std::pow(100.0 / 16.0, -1.0);
  EXPECT_NEAR(p.evaluate(s, 50, 16.0).instructions, base, 1e-6);
  EXPECT_NEAR(p.evaluate(s, 99, 16.0).instructions, base, 1e-6);
  // Task 0 close to the full boost.
  EXPECT_NEAR(p.evaluate(s, 0, 16.0).instructions, base * 1.396, base * 0.01);
}

TEST(PhaseSpecTest, ImbalanceMinTasksGate) {
  PhaseSpec p = base_phase();
  p.imbalance_fraction = 0.5;
  p.imbalance_amount = 0.4;
  p.imbalance_min_tasks = 64;
  Scenario s = scenario_with_tasks(16);
  double base = p.evaluate(s, 0, 16.0).instructions;
  EXPECT_DOUBLE_EQ(base, 1e7);  // inactive below the gate
}

TEST(PhaseSpecTest, ModesPartitionTasks) {
  PhaseSpec p = base_phase();
  p.modes = {
      BehaviorMode{.task_fraction = 0.25, .ipc_factor = 2.0},
      BehaviorMode{.task_fraction = 0.75, .ipc_factor = 0.5},
  };
  Scenario s = scenario_with_tasks(16);
  int fast = 0, slow = 0;
  for (std::uint32_t task = 0; task < 16; ++task) {
    double ipc = p.evaluate(s, task, 16.0).ipc_ideal;
    if (ipc == 3.0) ++fast;
    else if (ipc == 0.75) ++slow;
  }
  EXPECT_EQ(fast, 4);
  EXPECT_EQ(slow, 12);
}

TEST(PhaseSpecTest, ModeFiltersByPlatformAndTasks) {
  PhaseSpec p = base_phase();
  p.modes = {
      BehaviorMode{.task_fraction = 1.0,
                   .ipc_factor = 2.0,
                   .platform_filter = "MinoTauro",
                   .min_tasks = 32},
  };
  Scenario wrong_platform = scenario_with_tasks(32);
  EXPECT_DOUBLE_EQ(p.evaluate(wrong_platform, 0, 16.0).ipc_ideal, 1.5);

  Scenario right = scenario_with_tasks(32);
  right.platform = minotauro();
  double expected = 1.5 * 2.0 * right.platform.ipc_factor;
  EXPECT_DOUBLE_EQ(p.evaluate(right, 0, 16.0).ipc_ideal, expected);

  Scenario too_few = scenario_with_tasks(16);
  too_few.platform = minotauro();
  EXPECT_DOUBLE_EQ(p.evaluate(too_few, 0, 16.0).ipc_ideal,
                   1.5 * too_few.platform.ipc_factor);
}

TEST(PhaseSpecTest, BlockSizeControlsWorkingSet) {
  PhaseSpec p = base_phase();
  p.block_ws_factor = 1.0;
  Scenario s = scenario_with_tasks(16);
  s.block_kb = 32.0;
  EXPECT_DOUBLE_EQ(p.evaluate(s, 0, 16.0).working_set_kb, 32.0);
  // Without block sensitivity the knob is ignored.
  PhaseSpec q = base_phase();
  EXPECT_DOUBLE_EQ(q.evaluate(s, 0, 16.0).working_set_kb, 100.0);
}

TEST(PhaseSpecTest, BlockOverheadShrinksWithSide) {
  PhaseSpec p = base_phase();
  p.block_ws_factor = 1.0;
  p.block_side_overhead = 0.4;
  Scenario small = scenario_with_tasks(16);
  small.block_kb = 4.0 * 4.0 * 8.0 / 1024.0;  // side 4
  Scenario big = scenario_with_tasks(16);
  big.block_kb = 64.0 * 64.0 * 8.0 / 1024.0;  // side 64
  double instr_small = p.evaluate(small, 0, 16.0).instructions;
  double instr_big = p.evaluate(big, 0, 16.0).instructions;
  EXPECT_NEAR(instr_small, 1e7 * 1.1, 1.0);
  EXPECT_NEAR(instr_big, 1e7 * (1.0 + 0.4 / 64.0), 1.0);
  EXPECT_GT(instr_small, instr_big);
}

TEST(PhaseSpecTest, RejectsBadArguments) {
  PhaseSpec p = base_phase();
  Scenario s = scenario_with_tasks(4);
  EXPECT_THROW(p.evaluate(s, 4, 16.0), PreconditionError);  // task range
  EXPECT_THROW(p.evaluate(s, 0, 0.0), PreconditionError);   // ref tasks
}

}  // namespace
}  // namespace perftrack::sim
