#include "sim/cache.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace perftrack::sim {
namespace {

TEST(CapacityRate, MonotoneInWorkingSet) {
  double prev = 0.0;
  for (double ws = 1.0; ws <= 65536.0; ws *= 2.0) {
    double rate = CacheModel::capacity_rate(ws, 256.0, 0.001, 0.01, 1.0);
    EXPECT_GE(rate, prev);
    prev = rate;
  }
}

TEST(CapacityRate, LimitsAreBaseAndBasePlusPeak) {
  double tiny = CacheModel::capacity_rate(1e-6, 256.0, 0.001, 0.01, 1.0);
  double huge = CacheModel::capacity_rate(1e12, 256.0, 0.001, 0.01, 1.0);
  EXPECT_NEAR(tiny, 0.001, 1e-5);
  EXPECT_NEAR(huge, 0.011, 1e-5);
}

TEST(CapacityRate, MidpointAtCapacity) {
  double mid = CacheModel::capacity_rate(256.0, 256.0, 0.0, 0.01, 1.0);
  EXPECT_NEAR(mid, 0.005, 1e-12);
}

TEST(CapacityRate, ZeroWorkingSetIsBase) {
  EXPECT_DOUBLE_EQ(CacheModel::capacity_rate(0.0, 256.0, 0.002, 0.01, 1.0),
                   0.002);
}

TEST(CapacityRate, RejectsBadCapacityAndWidth) {
  EXPECT_THROW(CacheModel::capacity_rate(1.0, 0.0, 0.0, 0.01, 1.0),
               PreconditionError);
  EXPECT_THROW(CacheModel::capacity_rate(1.0, 256.0, 0.0, 0.01, 0.0),
               PreconditionError);
}

Scenario scenario_with_occupancy(std::uint32_t tasks_per_node) {
  Scenario s;
  s.platform = minotauro();  // 12 cores/node, nonzero contention factors
  s.num_tasks = 12;
  s.tasks_per_node = tasks_per_node;
  return s;
}

TEST(ContentionFactor, SingleTaskPerNodeIsBaseline) {
  Scenario s = scenario_with_occupancy(1);
  EXPECT_NEAR(contention_factor(1.5, 6.0, s), 1.0, 1e-9);
}

TEST(ContentionFactor, GrowsWithOccupancy) {
  double prev = 0.0;
  for (std::uint32_t tpn = 1; tpn <= 12; ++tpn) {
    double f = contention_factor(1.5, 6.0, scenario_with_occupancy(tpn));
    EXPECT_GE(f, prev);
    prev = f;
  }
  EXPECT_GT(prev, 1.5);  // full node well above baseline
}

TEST(ContentionFactor, ZeroCoefficientIsNeutral) {
  EXPECT_DOUBLE_EQ(contention_factor(0.0, 3.0, scenario_with_occupancy(12)),
                   1.0);
}

TEST(CacheModelTest, RatesReflectWorkingSetAndContention) {
  CacheModel model;
  Scenario idle = scenario_with_occupancy(1);
  Scenario packed = scenario_with_occupancy(12);
  MissRates small_idle = model.rates(8.0, idle);
  MissRates big_idle = model.rates(4096.0, idle);
  EXPECT_GT(big_idle.l1, small_idle.l1);
  EXPECT_GT(big_idle.l2, small_idle.l2);
  EXPECT_GT(big_idle.tlb, small_idle.tlb);
  // Contention inflates L2 and TLB but not L1 (private).
  MissRates big_packed = model.rates(4096.0, packed);
  EXPECT_DOUBLE_EQ(big_packed.l1, big_idle.l1);
  EXPECT_GT(big_packed.l2, big_idle.l2);
  EXPECT_GT(big_packed.tlb, big_idle.tlb);
}

TEST(CacheModelTest, CpiAddsPenalties) {
  CacheModelParams params;
  params.l1_penalty = 10.0;
  params.l2_penalty = 100.0;
  params.tlb_penalty = 50.0;
  CacheModel model(params);
  Scenario s;
  s.platform = reference_platform();  // no contention
  MissRates rates{.l1 = 0.01, .l2 = 0.001, .tlb = 0.0001};
  double cpi = model.cpi(2.0, rates, s);
  EXPECT_NEAR(cpi, 0.5 + 0.1 + 0.1 + 0.005, 1e-12);
}

TEST(CacheModelTest, CpiRejectsNonPositiveIpc) {
  CacheModel model;
  Scenario s;
  EXPECT_THROW(model.cpi(0.0, {}, s), PreconditionError);
}

TEST(ScenarioTest, OccupancyAndTasksPerNode) {
  Scenario s;
  s.platform = minotauro();
  s.num_tasks = 4;
  s.tasks_per_node = 0;  // fill nodes, clamped to num_tasks
  EXPECT_EQ(s.effective_tasks_per_node(), 4u);
  s.tasks_per_node = 99;
  EXPECT_EQ(s.effective_tasks_per_node(), 4u);
  s.num_tasks = 24;
  s.tasks_per_node = 6;
  EXPECT_EQ(s.effective_tasks_per_node(), 6u);
  EXPECT_DOUBLE_EQ(s.occupancy(), 0.5);
}

}  // namespace
}  // namespace perftrack::sim
