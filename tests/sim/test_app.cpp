#include "sim/app.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "trace/metrics.hpp"

namespace perftrack::sim {
namespace {

AppModel two_phase_app() {
  AppModel app("toy", /*ref_tasks=*/4.0, /*default_iterations=*/5);
  PhaseSpec a;
  a.name = "compute";
  a.location = {"compute", "toy.c", 10};
  a.base_instructions = 2e6;
  a.base_ipc = 1.2;
  a.working_set_kb = 16.0;
  app.add_phase(a);
  PhaseSpec b;
  b.name = "exchange";
  b.location = {"exchange", "toy.c", 20};
  b.base_instructions = 5e5;
  b.base_ipc = 0.8;
  b.working_set_kb = 8.0;
  b.repeats = 2;
  app.add_phase(b);
  return app;
}

Scenario toy_scenario() {
  Scenario s;
  s.label = "toy-4";
  s.num_tasks = 4;
  s.platform = reference_platform();
  return s;
}

TEST(AppModelTest, ConstructorValidates) {
  EXPECT_THROW(AppModel("x", 0.0, 5), PreconditionError);
  EXPECT_THROW(AppModel("x", 4.0, 0), PreconditionError);
}

TEST(AppModelTest, AddPhaseValidates) {
  AppModel app("x", 4.0, 5);
  PhaseSpec p;
  p.name = "";
  EXPECT_THROW(app.add_phase(p), PreconditionError);
  p.name = "ok";
  p.repeats = 0;
  EXPECT_THROW(app.add_phase(p), PreconditionError);
}

TEST(AppModelTest, SimulateRequiresPhases) {
  AppModel app("x", 4.0, 5);
  EXPECT_THROW(app.simulate(toy_scenario()), PreconditionError);
}

TEST(AppModelTest, BurstCountMatchesStructure) {
  AppModel app = two_phase_app();
  trace::Trace trace = app.simulate(toy_scenario());
  // 4 tasks x 5 iterations x (1 + 2 repeats) bursts.
  EXPECT_EQ(trace.burst_count(), 4u * 5u * 3u);
  EXPECT_EQ(trace.num_tasks(), 4u);
  EXPECT_EQ(trace.label(), "toy-4");
  trace.validate();
}

TEST(AppModelTest, IterationOverride) {
  AppModel app = two_phase_app();
  Scenario s = toy_scenario();
  s.iterations = 2;
  EXPECT_EQ(app.simulate(s).burst_count(), 4u * 2u * 3u);
}

TEST(AppModelTest, DeterministicForSameSeed) {
  AppModel app = two_phase_app();
  trace::Trace a = app.simulate(toy_scenario());
  trace::Trace b = app.simulate(toy_scenario());
  ASSERT_EQ(a.burst_count(), b.burst_count());
  for (std::size_t i = 0; i < a.burst_count(); ++i) {
    EXPECT_DOUBLE_EQ(a.bursts()[i].duration, b.bursts()[i].duration);
    EXPECT_EQ(a.bursts()[i].counters, b.bursts()[i].counters);
  }
}

TEST(AppModelTest, DifferentSeedsProduceDifferentNoise) {
  AppModel app = two_phase_app();
  Scenario s1 = toy_scenario();
  Scenario s2 = toy_scenario();
  s2.seed = 777;
  trace::Trace a = app.simulate(s1);
  trace::Trace b = app.simulate(s2);
  EXPECT_NE(a.bursts()[0].counters.get(trace::Counter::Instructions),
            b.bursts()[0].counters.get(trace::Counter::Instructions));
}

TEST(AppModelTest, CountersAreInternallyConsistent) {
  AppModel app = two_phase_app();
  trace::Trace trace = app.simulate(toy_scenario());
  const double clock_hz = toy_scenario().platform.clock_ghz * 1e9;
  for (const auto& burst : trace.bursts()) {
    double instr = burst.counters.get(trace::Counter::Instructions);
    double cycles = burst.counters.get(trace::Counter::Cycles);
    EXPECT_GT(instr, 0.0);
    EXPECT_GT(cycles, 0.0);
    // duration = cycles / clock
    EXPECT_NEAR(burst.duration, cycles / clock_hz, 1e-12);
    // Miss counts are rates times instructions, so far below instructions.
    EXPECT_LT(burst.counters.get(trace::Counter::L1DMisses), instr);
    EXPECT_GE(burst.counters.get(trace::Counter::L2Misses), 0.0);
  }
}

TEST(AppModelTest, PerTaskClocksAdvance) {
  AppModel app = two_phase_app();
  trace::Trace trace = app.simulate(toy_scenario());
  for (std::uint32_t task = 0; task < trace.num_tasks(); ++task) {
    double prev_end = -1.0;
    for (auto idx : trace.task_bursts(task)) {
      const auto& burst = trace.bursts()[idx];
      EXPECT_GT(burst.begin_time, prev_end);  // comm gap separates bursts
      prev_end = burst.end_time();
    }
  }
}

TEST(AppModelTest, AttributesCarryScenario) {
  AppModel app = two_phase_app();
  Scenario s = toy_scenario();
  s.compiler = xlf();
  s.problem_scale = 4.0;
  s.extra["class"] = "A";
  trace::Trace trace = app.simulate(s);
  EXPECT_EQ(trace.attribute_or("compiler", ""), "xlf");
  EXPECT_EQ(trace.attribute_or("platform", ""), "Reference");
  EXPECT_EQ(trace.attribute_or("class", ""), "A");
  EXPECT_NE(trace.attribute_or("problem_scale", ""), "");
}

TEST(AppModelTest, CallstacksPointToPhases) {
  AppModel app = two_phase_app();
  trace::Trace trace = app.simulate(toy_scenario());
  std::set<std::string> functions;
  for (const auto& burst : trace.bursts())
    functions.insert(trace.callstacks().resolve(burst.callstack).function);
  EXPECT_EQ(functions, (std::set<std::string>{"compute", "exchange"}));
}

TEST(AppModelTest, MissSensitivityScalesMissCounters) {
  AppModel app("sens", 4.0, 2);
  PhaseSpec p;
  p.name = "p";
  p.base_instructions = 1e6;
  p.base_ipc = 1.0;
  p.working_set_kb = 64.0;
  p.noise_instr = 0.0;
  p.noise_ipc = 0.0;
  app.add_phase(p);
  AppModel app2x("sens2", 4.0, 2);
  PhaseSpec q = p;
  q.miss_sensitivity = 2.0;
  app2x.add_phase(q);

  Scenario s = toy_scenario();
  double l1_a = app.simulate(s).bursts()[0].counters.get(
      trace::Counter::L1DMisses);
  double l1_b = app2x.simulate(s).bursts()[0].counters.get(
      trace::Counter::L1DMisses);
  EXPECT_NEAR(l1_b, 2.0 * l1_a, 1e-9 * l1_b);
}

}  // namespace
}  // namespace perftrack::sim
