#pragma once
// Shared synthetic-trace builders for the cluster and tracking tests.
//
// Builds tiny, fully controlled traces: a list of (instructions, ipc,
// location) phase descriptors executed by every task in every iteration,
// in order — the smallest SPMD structure that exercises projection,
// clustering and all four evaluators deterministically.

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "trace/trace.hpp"

namespace perftrack::testing {

struct MiniPhase {
  double instructions;
  double ipc;
  trace::SourceLocation location{"phase", "test.c", 1};
  /// Optional per-task multipliers on ipc for a contiguous leading share of
  /// the tasks (bimodal splits): tasks in [0, split_fraction) use
  /// split_ipc_factor.
  double split_fraction = 0.0;
  double split_ipc_factor = 1.0;
  double split_instr_factor = 1.0;
};

struct MiniTraceSpec {
  std::string label = "mini";
  std::uint32_t tasks = 4;
  int iterations = 6;
  std::vector<MiniPhase> phases;
  double clock_hz = 1e9;
  double noise = 0.0;  ///< lognormal sigma on instructions and ipc
  std::uint64_t seed = 1;
};

inline std::shared_ptr<const trace::Trace> make_mini_trace(
    const MiniTraceSpec& spec) {
  auto trace = std::make_shared<trace::Trace>("mini-app", spec.tasks);
  trace->set_label(spec.label);
  std::vector<trace::CallstackId> callstacks;
  for (const MiniPhase& phase : spec.phases)
    callstacks.push_back(trace->callstacks().intern(phase.location));

  Rng rng(spec.seed);
  for (std::uint32_t task = 0; task < spec.tasks; ++task) {
    Rng task_rng = rng.derive("task", task);
    double clock = 0.0;
    for (int iter = 0; iter < spec.iterations; ++iter) {
      for (std::size_t p = 0; p < spec.phases.size(); ++p) {
        const MiniPhase& phase = spec.phases[p];
        double instr = phase.instructions;
        double ipc = phase.ipc;
        double pos = (task + 0.5) / static_cast<double>(spec.tasks);
        if (phase.split_fraction > 0.0 && pos < phase.split_fraction) {
          ipc *= phase.split_ipc_factor;
          instr *= phase.split_instr_factor;
        }
        if (spec.noise > 0.0) {
          instr *= task_rng.jitter(spec.noise);
          ipc *= task_rng.jitter(spec.noise);
        }
        double cycles = instr / ipc;
        double duration = cycles / spec.clock_hz;

        trace::Burst burst;
        burst.task = task;
        burst.begin_time = clock;
        burst.duration = duration;
        burst.callstack = callstacks[p];
        burst.counters.set(trace::Counter::Instructions, instr);
        burst.counters.set(trace::Counter::Cycles, cycles);
        trace->add_burst(burst);
        clock += duration * 1.1;
      }
    }
  }
  return trace;
}

}  // namespace perftrack::testing
