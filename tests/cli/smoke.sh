#!/usr/bin/env bash
# End-to-end smoke test of the command-line tools:
#   trace_inspect generates a sample .ptt; perftrack inspects, slices and
#   tracks it; ptconvert round-trips it through the Paraver format.
set -euo pipefail

TOOLS_DIR=$1
EXAMPLES_DIR=$2
WORK_DIR=$(mktemp -d)
trap 'rm -rf "$WORK_DIR"' EXIT
cd "$WORK_DIR"

echo "== generate a sample trace =="
"$EXAMPLES_DIR/trace_inspect" > /dev/null
test -f hydroc_sample.ptt

echo "== perftrack inspect =="
"$TOOLS_DIR/perftrack" inspect hydroc_sample.ptt | grep -q "behavioural clusters"

echo "== perftrack evolve with CSV and HTML output =="
"$TOOLS_DIR/perftrack" evolve --intervals 4 hydroc_sample.ptt \
    --csv trends.csv --html report.html | grep -q "coverage 100%"
test -s trends.csv
head -1 trends.csv | grep -q "region,frame"
grep -q "<!DOCTYPE html>" report.html

echo "== perftrack track over two interval slices =="
"$TOOLS_DIR/perftrack" track hydroc_sample.ptt hydroc_sample.ptt \
    --matrices | grep -q "tracked regions: 2"

echo "== perftrack track with telemetry sinks =="
"$TOOLS_DIR/perftrack" track hydroc_sample.ptt hydroc_sample.ptt \
    --profile profile.json --trace-events trace_events.json \
    2> telemetry.log | grep -q "tracked regions: 2"
test -s profile.json
test -s trace_events.json
# The run report covers every pipeline stage...
grep -q '"schema":"perftrack-run-report"' profile.json
for span in dbscan pipeline_run track_frames frame_alignment \
            evaluator_displacement evaluator_spmd evaluator_callstack \
            evaluator_sequence needleman_wunsch; do
  grep -q "\"$span\"" profile.json
done
# ...and the per-evaluator relation/prune counters.
for counter in links_proposed links_pruned_callstack \
               spmd_merges_pruned_callstack alignment_cells; do
  grep -q "\"$counter\"" profile.json
done
grep -q '"traceEvents"' trace_events.json
grep -q '"ph":"B"' trace_events.json
# The stage summary lands on stderr, keeping stdout scriptable.
grep -q "% run" telemetry.log
if command -v python3 > /dev/null; then
  python3 -c "import json; json.load(open('profile.json')); \
json.load(open('trace_events.json'))"
fi

echo "== parallel tracking is bit-identical to serial =="
"$TOOLS_DIR/perftrack" evolve --intervals 4 hydroc_sample.ptt \
    --threads 1 --csv run_trends.csv > serial.out
mv run_trends.csv serial_trends.csv
"$TOOLS_DIR/perftrack" evolve --intervals 4 hydroc_sample.ptt \
    --threads 4 --csv run_trends.csv > parallel.out
mv run_trends.csv parallel_trends.csv
diff serial.out parallel.out
diff serial_trends.csv parallel_trends.csv
# The run report records how many workers the tracker used.
"$TOOLS_DIR/perftrack" evolve --intervals 4 hydroc_sample.ptt --threads 2 \
    --profile threads_profile.json > /dev/null 2>&1
grep -q '"threads":2' threads_profile.json

echo "== ptconvert round trip through Paraver =="
"$TOOLS_DIR/ptconvert" to-prv hydroc_sample.ptt pv_base | grep -q "wrote"
test -s pv_base.prv
test -s pv_base.pcf
"$TOOLS_DIR/ptconvert" to-ptt pv_base back.ptt | grep -q "wrote"
"$TOOLS_DIR/perftrack" inspect back.ptt | grep -q "behavioural clusters"

echo "== bad flag values are usage errors (exit 2), not crashes =="
for bad in "--eps banana" "--eps -1" "--min-pts -3" "--min-pts 0" \
           "--threads many" "--min-cluster-frac 2"; do
  rc=0
  # shellcheck disable=SC2086
  "$TOOLS_DIR/perftrack" track hydroc_sample.ptt hydroc_sample.ptt $bad \
      > /dev/null 2> bad_flag.err || rc=$?
  test "$rc" -eq 2 || { echo "expected exit 2 for '$bad', got $rc" >&2; exit 1; }
  grep -q "invalid value" bad_flag.err
  grep -q "usage: perftrack" bad_flag.err
done
rc=0
"$TOOLS_DIR/perftrack" track hydroc_sample.ptt hydroc_sample.ptt --eps \
    2> /dev/null || rc=$?
test "$rc" -eq 2
rc=0
"$TOOLS_DIR/perftrack" track hydroc_sample.ptt hydroc_sample.ptt --bogus \
    2> /dev/null || rc=$?
test "$rc" -eq 2

echo "== frame cache: cold stores, warm hits, identical output =="
"$TOOLS_DIR/perftrack" track hydroc_sample.ptt hydroc_sample.ptt \
    --cache-dir fcache --profile cache_cold.json > cache_cold.out 2> /dev/null
ls fcache/*.ptf > /dev/null
grep -q '"frame_cache_misses"' cache_cold.json
grep -q '"frame_cache_stores"' cache_cold.json
"$TOOLS_DIR/perftrack" track hydroc_sample.ptt hydroc_sample.ptt \
    --cache-dir fcache --profile cache_warm.json > cache_warm.out 2> /dev/null
grep -q '"frame_cache_hits":2' cache_warm.json
diff cache_cold.out cache_warm.out
# PERFTRACK_CACHE is the ambient default; --no-cache wins over it.
PERFTRACK_CACHE=fcache "$TOOLS_DIR/perftrack" track hydroc_sample.ptt \
    hydroc_sample.ptt --profile cache_env.json > cache_env.out 2> /dev/null
grep -q '"frame_cache_hits":2' cache_env.json
diff cache_cold.out cache_env.out
PERFTRACK_CACHE=fcache "$TOOLS_DIR/perftrack" track hydroc_sample.ptt \
    hydroc_sample.ptt --no-cache --profile cache_off.json > /dev/null 2>&1
if grep -q '"frame_cache_hits"' cache_off.json; then
  echo "--no-cache must disable the frame cache" >&2
  exit 1
fi
# A corrupted entry is a miss plus a diagnostic, never a failure.
for f in fcache/*.ptf; do truncate -s 25 "$f"; done
"$TOOLS_DIR/perftrack" track hydroc_sample.ptt hydroc_sample.ptt \
    --cache-dir fcache > cache_corrupt.out 2> cache_corrupt.err
diff cache_cold.out cache_corrupt.out
grep -q "dropping corrupt entry" cache_corrupt.err

echo "== bad input is rejected cleanly =="
if "$TOOLS_DIR/perftrack" track only_one.ptt 2> /dev/null; then
  echo "expected failure on a single input" >&2
  exit 1
fi

echo "== lenient ingestion of a corrupted trace (exit 5, diagnostics) =="
cp hydroc_sample.ptt corrupt.ptt
printf 'burst 0 bad bad bad\n%%%%%% garbage line\nburst 9999\n' >> corrupt.ptt
rc=0
"$TOOLS_DIR/perftrack" track corrupt.ptt hydroc_sample.ptt --lenient \
    > lenient.out 2> lenient.err || rc=$?
test "$rc" -eq 5
grep -q "tracked regions" lenient.out
grep -q "bad-burst" lenient.err
grep -q "unknown-record" lenient.err
grep -q "errors" lenient.err
grep -q "degraded run" lenient.err

echo "== strict mode fails fast with the parse exit code =="
rc=0
"$TOOLS_DIR/perftrack" track corrupt.ptt hydroc_sample.ptt \
    2> strict.err || rc=$?
test "$rc" -eq 3
grep -q "parse error" strict.err

echo "== missing input uses the io exit code =="
rc=0
"$TOOLS_DIR/perftrack" track nonexistent.ptt hydroc_sample.ptt \
    2> /dev/null || rc=$?
test "$rc" -eq 4

echo "== unreadable file becomes a gap under --lenient =="
rc=0
"$TOOLS_DIR/perftrack" track hydroc_sample.ptt hydroc_sample.ptt \
    nonexistent.ptt --lenient > gap.out 2> gap.err || rc=$?
test "$rc" -eq 5
grep -q "gap at slot 3: nonexistent.ptt" gap.out
grep -q "skipping nonexistent.ptt" gap.err

echo "== injected fault becomes a gap under --lenient =="
rc=0
PERFTRACK_FAILPOINTS="cluster_experiment=@2" \
    "$TOOLS_DIR/perftrack" track hydroc_sample.ptt hydroc_sample.ptt \
    hydroc_sample.ptt --lenient > fault.out 2> /dev/null || rc=$?
test "$rc" -eq 5
grep -q "injected fault" fault.out

echo "== a regular file as --cache-dir is a configuration error, not silence =="
touch notadir
rc=0
"$TOOLS_DIR/perftrack" track hydroc_sample.ptt hydroc_sample.ptt \
    --cache-dir notadir > /dev/null 2> cache_file.err || rc=$?
test "$rc" -eq 1 || { echo "expected exit 1, got $rc" >&2; exit 1; }
grep -q "exists but is not a directory" cache_file.err
# The file itself must be left alone.
test -f notadir

echo "== perftrackd --stdio: append, retrack, read, drained shutdown =="
cat > daemon_in.ndjson <<EOF
{"id":1,"method":"ping"}
{"id":2,"method":"open_study","study":"smoke"}
{"id":3,"method":"append_experiment","study":"smoke","params":{"path":"hydroc_sample.ptt","label":"run-1"}}
{"id":4,"method":"append_experiment","study":"smoke","params":{"path":"hydroc_sample.ptt","label":"run-2"}}
{"id":5,"method":"retrack","study":"smoke"}
{"id":6,"method":"regions","study":"smoke"}
{"id":7,"method":"coverage","study":"smoke"}
{"id":8,"method":"trends","study":"smoke","params":{"metric":"IPC"}}
{"id":9,"method":"stats"}
{"id":10,"method":"shutdown"}
EOF
"$TOOLS_DIR/perftrackd" --stdio < daemon_in.ndjson > daemon_out.ndjson
# Every request answered exactly once, none failed.
test "$(wc -l < daemon_out.ndjson)" -eq 10
if grep -q '"ok":false' daemon_out.ndjson; then
  echo "daemon rejected a request:" >&2
  grep '"ok":false' daemon_out.ndjson >&2
  exit 1
fi
grep -q '"coverage"' daemon_out.ndjson

if command -v python3 > /dev/null; then
  # The daemon's trends CSV must be the very bytes the batch CLI prints.
  python3 - <<'PY'
import json
ids = []
for line in open("daemon_out.ndjson"):
    response = json.loads(line)
    assert response["ok"], response
    ids.append(response["id"])
    if response["id"] == 8:
        open("daemon_trends.csv", "w").write(response["result"]["csv"])
assert ids == sorted(ids), f"responses out of order: {ids}"
PY
  "$TOOLS_DIR/perftrack" track hydroc_sample.ptt hydroc_sample.ptt \
      --csv batch_trends.csv > /dev/null
  diff daemon_trends.csv batch_trends.csv
fi

echo "== perftrackd error paths: typed errors, usage exit code =="
printf '{"id":1,"method":"nope"}\n{"id":2,"method":"regions","study":"ghost"}\nnot json\n' \
    | "$TOOLS_DIR/perftrackd" --stdio > daemon_err.ndjson
test "$(wc -l < daemon_err.ndjson)" -eq 3
grep -q '"unknown-method"' daemon_err.ndjson
grep -q '"unknown-study"' daemon_err.ndjson
grep -q '"bad-request"' daemon_err.ndjson
# EOF with no shutdown request still drains and exits cleanly.
printf '{"id":1,"method":"ping"}\n' | "$TOOLS_DIR/perftrackd" --stdio \
    | grep -q '"ok":true'
# Transport is mandatory: neither or both of --stdio/--socket is usage.
rc=0
"$TOOLS_DIR/perftrackd" 2> /dev/null || rc=$?
test "$rc" -eq 2
rc=0
"$TOOLS_DIR/perftrackd" --stdio --socket s.sock 2> /dev/null || rc=$?
test "$rc" -eq 2

echo "== perftrackd live metrics: health + metrics over stdio =="
cat > metrics_in.ndjson <<EOF
{"id":1,"method":"ping"}
{"id":2,"method":"health"}
{"id":3,"method":"metrics"}
{"id":4,"method":"metrics","params":{"format":"prometheus"}}
EOF
"$TOOLS_DIR/perftrackd" --stdio < metrics_in.ndjson > metrics_out.ndjson
test "$(wc -l < metrics_out.ndjson)" -eq 4
if grep -q '"ok":false' metrics_out.ndjson; then
  echo "metrics request failed:" >&2
  grep '"ok":false' metrics_out.ndjson >&2
  exit 1
fi
grep -q '"draining":false' metrics_out.ndjson
# The JSON snapshot carries the request counters and latency histograms...
grep -q 'perftrackd_requests_total' metrics_out.ndjson
grep -q 'perftrackd_handler_ns' metrics_out.ndjson
# ...and the prometheus rendering is exposition format 0.0.4.
grep -q '# HELP perftrackd_requests_total' metrics_out.ndjson
grep -q '# TYPE perftrackd_handler_ns histogram' metrics_out.ndjson
# --no-metrics keeps the surface but records nothing.
printf '{"id":1,"method":"ping"}\n{"id":2,"method":"metrics"}\n' \
    | "$TOOLS_DIR/perftrackd" --stdio --no-metrics > metrics_off.ndjson
grep -q '"perftrackd_requests_total{method=\\"ping\\"}":0' metrics_off.ndjson

echo "== perftrackd --access-log: one line per request, phase breakdown =="
cat > access_in.ndjson <<EOF
{"id":1,"method":"ping"}
{"id":2,"method":"open_study","study":"logged"}
{"id":3,"method":"nope"}
EOF
"$TOOLS_DIR/perftrackd" --stdio --access-log access.ndjson \
    < access_in.ndjson > /dev/null
test "$(wc -l < access.ndjson)" -eq 3
grep -q '"method":"ping"' access.ndjson
grep -q '"study":"logged"' access.ndjson
grep -q '"outcome":"ok"' access.ndjson
grep -q '"outcome":"unknown-method"' access.ndjson
for field in ts_ms parse_us queue_us lock_us handler_us write_us total_us; do
  grep -q "\"$field\"" access.ndjson
done
if command -v python3 > /dev/null; then
  python3 -c "import json,sys; [json.loads(l) for l in open('access.ndjson')]"
fi

echo "== --slow-ms 0 dumps a span tree per request =="
printf '{"id":1,"method":"ping"}\n' | "$TOOLS_DIR/perftrackd" --stdio \
    --slow-ms 0 --access-log slow.ndjson > /dev/null
grep -q '"slow":true' slow.ndjson
grep -q '"spans"' slow.ndjson
grep -q 'serve_request' slow.ndjson

echo "== perftrack stat against a live socket daemon =="
"$TOOLS_DIR/perftrackd" --socket stat.sock > /dev/null 2>&1 &
DAEMON_PID=$!
trap 'kill "$DAEMON_PID" 2> /dev/null || true; rm -rf "$WORK_DIR"' EXIT
for _ in $(seq 1 100); do test -S stat.sock && break; sleep 0.1; done
test -S stat.sock
"$TOOLS_DIR/perftrack" stat stat.sock > stat.out
grep -q "perftrackd up" stat.out
grep -q "queue:" stat.out
# Two watch refreshes; by the second the latency table has a stats row.
"$TOOLS_DIR/perftrack" stat stat.sock --watch --interval 1 --count 2 \
    > stat_watch.out
test "$(grep -c 'perftrackd up' stat_watch.out)" -eq 2
grep -q '^method' stat_watch.out
grep -q '^stats ' stat_watch.out
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || true

echo "cli smoke: OK"
