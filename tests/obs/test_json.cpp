#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "common/error.hpp"

namespace perftrack::obs {
namespace {

TEST(JsonWriterTest, NestedContainersAndCommas) {
  JsonWriter w;
  w.begin_object()
      .key("name").value("run")
      .key("ids").begin_array().value(std::uint64_t{1})
                 .value(std::uint64_t{2}).end_array()
      .key("nested").begin_object().key("ok").value(true).end_object()
      .key("none").null()
      .end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"run\",\"ids\":[1,2],"
            "\"nested\":{\"ok\":true},\"none\":null}");
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter w;
  w.value("quote\" slash\\ tab\t newline\n");
  EXPECT_EQ(w.str(), "\"quote\\\" slash\\\\ tab\\t newline\\n\"");
  EXPECT_EQ(escape_json(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_array()
      .value(std::numeric_limits<double>::infinity())
      .value(std::numeric_limits<double>::quiet_NaN())
      .value(1.5)
      .end_array();
  EXPECT_EQ(w.str(), "[null,null,1.5]");
}

TEST(JsonParseTest, Scalars) {
  EXPECT_EQ(parse_json("null").type, JsonValue::Type::Null);
  EXPECT_TRUE(parse_json("true").boolean);
  EXPECT_FALSE(parse_json("false").boolean);
  EXPECT_DOUBLE_EQ(parse_json("-12.5e2").number, -1250.0);
  EXPECT_EQ(parse_json("\"hi\"").string, "hi");
}

TEST(JsonParseTest, UnicodeEscapes) {
  JsonValue v = parse_json("\"A\\u0042\\u00e9\"");
  EXPECT_EQ(v.string, "AB\xc3\xa9");  // é as UTF-8
}

TEST(JsonParseTest, ObjectsAndArrays) {
  JsonValue v = parse_json(R"({"a": [1, 2, 3], "b": {"c": "d"}})");
  ASSERT_TRUE(v.is_object());
  ASSERT_TRUE(v.at("a").is_array());
  ASSERT_EQ(v.at("a").array.size(), 3u);
  EXPECT_DOUBLE_EQ(v.at("a").array[1].number, 2.0);
  EXPECT_EQ(v.at("b").at("c").string, "d");
  EXPECT_TRUE(v.has("a"));
  EXPECT_FALSE(v.has("missing"));
}

TEST(JsonParseTest, MalformedInputThrows) {
  EXPECT_THROW(parse_json("{"), ParseError);
  EXPECT_THROW(parse_json("[1,]"), ParseError);
  EXPECT_THROW(parse_json("\"unterminated"), ParseError);
  EXPECT_THROW(parse_json("1 trailing"), ParseError);
  EXPECT_THROW(parse_json(""), ParseError);
}

TEST(JsonRoundTripTest, WriterOutputParsesBack) {
  JsonWriter w;
  w.begin_object()
      .key("label").value("bench \"x\"")
      .key("wall_ns").value(std::uint64_t{123456789})
      .key("coverage").value(0.875)
      .key("stages").begin_array()
        .begin_object().key("name").value("dbscan").end_object()
        .begin_object().key("name").value("nw").end_object()
      .end_array()
      .end_object();

  JsonValue v = parse_json(w.str());
  EXPECT_EQ(v.at("label").string, "bench \"x\"");
  EXPECT_DOUBLE_EQ(v.at("wall_ns").number, 123456789.0);
  EXPECT_DOUBLE_EQ(v.at("coverage").number, 0.875);
  ASSERT_EQ(v.at("stages").array.size(), 2u);
  EXPECT_EQ(v.at("stages").array[1].at("name").string, "nw");
}

}  // namespace
}  // namespace perftrack::obs
