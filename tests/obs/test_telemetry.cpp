#include "obs/telemetry.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

namespace perftrack::obs {
namespace {

// Every test starts from a clean, enabled recorder and leaves telemetry
// off so neighbouring suites (which exercise the instrumented pipeline)
// are unaffected.
class TelemetryTest : public ::testing::Test {
protected:
  void SetUp() override {
    set_enabled(true);
    reset();
  }
  void TearDown() override {
    set_enabled(false);
    reset();
  }
};

const SpanNode* find_child(const SpanNode& parent, const std::string& name) {
  for (const SpanNode& child : parent.children)
    if (child.name == name) return &child;
  return nullptr;
}

TEST_F(TelemetryTest, SpansNestAndFold) {
  for (int i = 0; i < 3; ++i) {
    PT_SPAN("outer");
    {
      PT_SPAN("inner");
    }
    {
      PT_SPAN("inner");
    }
  }
  RunReport report = collect();
  const SpanNode* outer = find_child(report.root, "outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 3u);
  const SpanNode* inner = find_child(*outer, "inner");
  ASSERT_NE(inner, nullptr);
  // Two executions per outer iteration fold into one node.
  EXPECT_EQ(inner->count, 6u);
  EXPECT_TRUE(inner->children.empty());
  // A parent's wall time includes its children's.
  EXPECT_GE(outer->total_ns, inner->total_ns);
  EXPECT_EQ(outer->self_ns, outer->total_ns - inner->total_ns);
}

TEST_F(TelemetryTest, MinMaxCoverCompletedExecutions) {
  {
    PT_SPAN("fast");
  }
  {
    PT_SPAN("fast");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  RunReport report = collect();
  const SpanNode* fast = find_child(report.root, "fast");
  ASSERT_NE(fast, nullptr);
  EXPECT_EQ(fast->count, 2u);
  EXPECT_LE(fast->min_ns, fast->max_ns);
  EXPECT_GE(fast->max_ns, 2000000u) << "slow execution sets the max";
  EXPECT_LT(fast->min_ns, 2000000u) << "fast execution sets the min";
  // min + max are bounded by the fold's own accounting.
  EXPECT_LE(fast->min_ns + fast->max_ns, fast->total_ns);
}

TEST_F(TelemetryTest, OpenSpanCountsTowardTotalButNotMinMax) {
  ScopedSpan* open = new ScopedSpan("pending");
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  RunReport report = collect();
  const SpanNode* pending = find_child(report.root, "pending");
  ASSERT_NE(pending, nullptr);
  EXPECT_EQ(pending->count, 1u);
  EXPECT_GT(pending->total_ns, 0u);
  EXPECT_EQ(pending->min_ns, 0u) << "no completed execution yet";
  EXPECT_EQ(pending->max_ns, 0u);
  delete open;
}

TEST_F(TelemetryTest, CountersAttachToActiveSpanAndSum) {
  {
    PT_SPAN("stage");
    PT_COUNTER("widgets", 2.0);
    PT_COUNTER("widgets", 3.0);
  }
  {
    PT_SPAN("stage");
    PT_COUNTER("widgets", 5.0);
  }
  RunReport report = collect();
  const SpanNode* stage = find_child(report.root, "stage");
  ASSERT_NE(stage, nullptr);
  ASSERT_EQ(stage->counters.count("widgets"), 1u);
  EXPECT_DOUBLE_EQ(stage->counters.at("widgets"), 10.0);
  // Counters also roll up into the run-wide totals.
  ASSERT_EQ(report.counters.count("widgets"), 1u);
  EXPECT_DOUBLE_EQ(report.counters.at("widgets"), 10.0);
}

TEST_F(TelemetryTest, CounterOutsideAnySpanGoesToRoot) {
  PT_COUNTER("stray", 4.0);
  RunReport report = collect();
  ASSERT_EQ(report.root.counters.count("stray"), 1u);
  EXPECT_DOUBLE_EQ(report.root.counters.at("stray"), 4.0);
}

TEST_F(TelemetryTest, GaugeLastWriteWins) {
  PT_GAUGE("eps", 0.01);
  PT_GAUGE("eps", 0.05);
  RunReport report = collect();
  ASSERT_EQ(report.gauges.count("eps"), 1u);
  EXPECT_DOUBLE_EQ(report.gauges.at("eps"), 0.05);
}

TEST_F(TelemetryTest, GaugeLastWriteWinsAcrossThreadsByTimestamp) {
  // The main thread registers its event buffer first, a worker second.
  // The *chronologically last* write must win even though the folding
  // order visits the main thread's stream first — i.e. a later write on
  // an earlier-registered thread beats an earlier write on a
  // later-registered one, and vice versa.
  PT_GAUGE("load", 1.0);
  std::thread([] { PT_GAUGE("load", 2.0); }).join();
  PT_GAUGE("load", 3.0);
  RunReport after_main = collect();
  EXPECT_DOUBLE_EQ(after_main.gauges.at("load"), 3.0);

  std::thread([] { PT_GAUGE("load", 4.0); }).join();
  RunReport after_worker = collect();
  EXPECT_DOUBLE_EQ(after_worker.gauges.at("load"), 4.0);
}

TEST_F(TelemetryTest, DisabledRecordingIsANoOp) {
  set_enabled(false);
  EXPECT_FALSE(enabled());
  {
    PT_SPAN("ghost");
    PT_COUNTER("ghost_counter", 1.0);
    PT_GAUGE("ghost_gauge", 1.0);
  }
  RunReport report = collect();
  EXPECT_TRUE(report.root.children.empty());
  EXPECT_TRUE(report.counters.empty());
  EXPECT_TRUE(report.gauges.empty());
  for (const ThreadTimeline& timeline : timelines())
    EXPECT_TRUE(timeline.events.empty());
}

TEST_F(TelemetryTest, ResetDiscardsRecordedEvents) {
  {
    PT_SPAN("before_reset");
  }
  reset();
  RunReport report = collect();
  EXPECT_EQ(find_child(report.root, "before_reset"), nullptr);
  EXPECT_TRUE(report.counters.empty());
}

TEST_F(TelemetryTest, ThreadsMergeByName) {
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([] {
      PT_SPAN("worker");
      PT_COUNTER("work_items", 2.0);
    });
  for (auto& w : workers) w.join();

  RunReport report = collect();
  const SpanNode* worker = find_child(report.root, "worker");
  ASSERT_NE(worker, nullptr);
  EXPECT_EQ(worker->count, static_cast<std::uint64_t>(kThreads));
  EXPECT_DOUBLE_EQ(worker->counters.at("work_items"), 2.0 * kThreads);

  // Each recording thread keeps its own timeline.
  std::size_t threads_with_events = 0;
  for (const ThreadTimeline& timeline : timelines())
    if (!timeline.events.empty()) ++threads_with_events;
  EXPECT_GE(threads_with_events, static_cast<std::size_t>(kThreads));
}

TEST_F(TelemetryTest, CollectIsNonDestructive) {
  {
    PT_SPAN("stable");
  }
  RunReport first = collect();
  RunReport second = collect();
  ASSERT_NE(find_child(first.root, "stable"), nullptr);
  ASSERT_NE(find_child(second.root, "stable"), nullptr);
  EXPECT_EQ(find_child(first.root, "stable")->count,
            find_child(second.root, "stable")->count);
}

TEST_F(TelemetryTest, NowNsIsMonotonic) {
  std::uint64_t a = now_ns();
  std::uint64_t b = now_ns();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace perftrack::obs
