#include "obs/report.hpp"

#include <gtest/gtest.h>

#include "obs/json.hpp"
#include "obs/telemetry.hpp"

namespace perftrack::obs {
namespace {

class ReportTest : public ::testing::Test {
protected:
  void SetUp() override {
    set_enabled(true);
    reset();
  }
  void TearDown() override {
    set_enabled(false);
    reset();
  }

  // A tiny recorded run every test can serialize: two stages, a counter
  // and a gauge.
  void record_sample_run() {
    PT_SPAN("sample_outer");
    PT_COUNTER("items", 7.0);
    PT_GAUGE("ratio", 0.5);
    {
      PT_SPAN("sample_inner");
    }
  }

  static const JsonValue* find_span(const JsonValue& spans,
                                    const std::string& name) {
    for (const JsonValue& span : spans.array)
      if (span.at("name").string == name) return &span;
    return nullptr;
  }
};

TEST_F(ReportTest, ReportJsonRoundTrips) {
  record_sample_run();
  RunReport report = collect();
  report.label = "unit-test run";

  JsonValue v = parse_json(report_json(report));
  EXPECT_EQ(v.at("schema").string, "perftrack-run-report");
  EXPECT_DOUBLE_EQ(v.at("version").number, 1.0);
  EXPECT_EQ(v.at("label").string, "unit-test run");
  EXPECT_GE(v.at("wall_time_ns").number, 0.0);
  EXPECT_DOUBLE_EQ(v.at("counters").at("items").number, 7.0);
  EXPECT_DOUBLE_EQ(v.at("gauges").at("ratio").number, 0.5);

  // "spans" is the synthetic root node; recorded stages are its children.
  const JsonValue& root = v.at("spans");
  EXPECT_DOUBLE_EQ(root.at("total_ns").number,
                   v.at("wall_time_ns").number);
  const JsonValue* outer = find_span(root.at("children"), "sample_outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_DOUBLE_EQ(outer->at("count").number, 1.0);
  EXPECT_DOUBLE_EQ(outer->at("counters").at("items").number, 7.0);
  const JsonValue* inner = find_span(outer->at("children"), "sample_inner");
  ASSERT_NE(inner, nullptr);
  // total = self + children's total, at every level.
  EXPECT_DOUBLE_EQ(outer->at("total_ns").number,
                   outer->at("self_ns").number + inner->at("total_ns").number);
  // Latency extrema ride along with every span node.
  EXPECT_GE(outer->at("min_ns").number, 0.0);
  EXPECT_LE(outer->at("min_ns").number, outer->at("max_ns").number);
  EXPECT_LE(outer->at("max_ns").number, outer->at("total_ns").number);
}

TEST_F(ReportTest, TraceEventsAreBalancedChromeJson) {
  record_sample_run();
  record_sample_run();

  JsonValue v = parse_json(trace_events_json());
  ASSERT_TRUE(v.at("traceEvents").is_array());
  EXPECT_EQ(v.at("displayTimeUnit").string, "ms");

  int begins = 0, ends = 0, counters = 0, metadata = 0;
  for (const JsonValue& event : v.at("traceEvents").array) {
    const std::string& ph = event.at("ph").string;
    if (ph == "B") ++begins;
    else if (ph == "E") ++ends;
    else if (ph == "C") ++counters;
    else if (ph == "M") ++metadata;
    if (ph == "B" || ph == "E") {
      EXPECT_DOUBLE_EQ(event.at("pid").number, 1.0);
      EXPECT_TRUE(event.at("ts").is_number());
      EXPECT_TRUE(event.at("name").is_string());
    }
  }
  // Two outer + two inner spans, each with a B/E pair.
  EXPECT_EQ(begins, 4);
  EXPECT_EQ(ends, 4);
  EXPECT_GE(counters, 2);  // the counter and the gauge, twice
  EXPECT_GE(metadata, 1);  // process_name
}

TEST_F(ReportTest, SummaryTableListsStagesAndCounters) {
  record_sample_run();
  RunReport report = collect();

  std::string table = summary_table(report);
  EXPECT_NE(table.find("sample_outer"), std::string::npos);
  EXPECT_NE(table.find("sample_inner"), std::string::npos);
  EXPECT_NE(table.find("items"), std::string::npos);
  EXPECT_NE(table.find("ratio"), std::string::npos);
  EXPECT_NE(table.find("peak RSS"), std::string::npos);
}

TEST_F(ReportTest, EmptyRunStillSerializes) {
  RunReport report = collect();
  JsonValue v = parse_json(report_json(report));
  EXPECT_EQ(v.at("schema").string, "perftrack-run-report");
  EXPECT_TRUE(v.at("spans").at("children").array.empty());

  JsonValue t = parse_json(trace_events_json());
  // Only metadata events when nothing was recorded.
  for (const JsonValue& event : t.at("traceEvents").array)
    EXPECT_EQ(event.at("ph").string, "M");
}

}  // namespace
}  // namespace perftrack::obs
