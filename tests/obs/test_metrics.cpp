// The live metrics plane: histogram bucket math and quantile error
// bounds against a sorted reference, the cross-thread merge identity,
// and the exporters' wire formats.

#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "obs/json.hpp"

namespace perftrack::obs {
namespace {

// ---------------------------------------------------------------------------
// Bucket math

TEST(MetricsHistogramTest, SmallValuesAreExact) {
  for (std::uint64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    EXPECT_EQ(Histogram::bucket_index(v), v);
    EXPECT_EQ(Histogram::bucket_bound(v), v);
  }
}

TEST(MetricsHistogramTest, BoundIsInclusiveUpperBoundOfItsBucket) {
  // The bound of value v's bucket is >= v, and the next value after the
  // bound lands in a later bucket.
  std::vector<std::uint64_t> probes;
  for (unsigned shift = 0; shift < 63; ++shift) {
    probes.push_back(1ull << shift);
    probes.push_back((1ull << shift) + 1);
    probes.push_back((1ull << shift) - 1);
  }
  probes.push_back(~0ull);
  for (std::uint64_t v : probes) {
    const std::size_t index = Histogram::bucket_index(v);
    const std::uint64_t bound = Histogram::bucket_bound(index);
    ASSERT_GE(bound, v) << "value " << v;
    if (bound != ~0ull)
      ASSERT_GT(Histogram::bucket_index(bound + 1), index) << "value " << v;
  }
}

TEST(MetricsHistogramTest, BucketIndexIsMonotonicAcrossOctaves) {
  std::size_t last = 0;
  for (unsigned shift = 0; shift < 64; ++shift) {
    const std::size_t index = Histogram::bucket_index(1ull << shift);
    EXPECT_GE(index, last);
    last = index;
  }
  EXPECT_LT(Histogram::bucket_index(~0ull), Histogram::kBucketCount);
}

TEST(MetricsHistogramTest, RelativeBucketWidthIsBounded) {
  // Width of any non-exact bucket over its lower bound is <= 1/32: the
  // quantile error contract.
  for (std::size_t i = Histogram::kSubBuckets;
       i + 1 < Histogram::kBucketCount; ++i) {
    const std::uint64_t lo = Histogram::bucket_bound(i - 1) + 1;
    const std::uint64_t hi = Histogram::bucket_bound(i);
    if (hi == ~0ull) break;  // top bucket
    ASSERT_LE(hi - lo + 1, std::max<std::uint64_t>(1, lo / 32))
        << "bucket " << i;
  }
}

// ---------------------------------------------------------------------------
// Quantiles vs a sorted reference

/// True order statistic at quantile q (matching the histogram's rank
/// convention: rank = max(1, ceil(q * n)), 1-based).
std::uint64_t reference_quantile(std::vector<std::uint64_t> sorted,
                                 double q) {
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(sorted.size()))));
  return sorted[static_cast<std::size_t>(rank - 1)];
}

void expect_quantiles_within_bound(const std::vector<std::uint64_t>& values) {
  Histogram hist;
  for (std::uint64_t v : values) hist.record(v);
  const HistogramSnapshot snap = hist.snapshot();
  ASSERT_EQ(snap.count, values.size());

  std::vector<std::uint64_t> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (double q : {0.0, 0.01, 0.10, 0.50, 0.90, 0.99, 0.999, 1.0}) {
    const std::uint64_t truth = reference_quantile(sorted, q);
    const std::uint64_t est = snap.quantile(q);
    // The estimate is the bucket's inclusive upper bound (clamped to the
    // recorded max), so it never under-reports and over-reports by at
    // most the relative bucket width 1/32.
    EXPECT_GE(est, truth) << "q=" << q;
    EXPECT_LE(est, truth + truth / 32 + 1) << "q=" << q;
  }
}

TEST(MetricsHistogramTest, QuantilesUniformDistribution) {
  std::mt19937_64 rng(7);
  std::vector<std::uint64_t> values(10000);
  for (auto& v : values) v = rng() % 1000000;
  expect_quantiles_within_bound(values);
}

TEST(MetricsHistogramTest, QuantilesHeavyTail) {
  // Adversarial for linear-bucket schemes: seven orders of magnitude,
  // most mass at the bottom, rare huge outliers.
  std::mt19937_64 rng(11);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 9000; ++i) values.push_back(100 + rng() % 900);
  for (int i = 0; i < 900; ++i) values.push_back(100000 + rng() % 900000);
  for (int i = 0; i < 100; ++i)
    values.push_back(100000000 + rng() % 900000000);
  expect_quantiles_within_bound(values);
}

TEST(MetricsHistogramTest, QuantilesPowersOfTwoOnBucketEdges) {
  // Values sitting exactly on bucket boundaries — the rounding edges.
  std::vector<std::uint64_t> values;
  for (unsigned shift = 0; shift < 40; ++shift) {
    values.push_back(1ull << shift);
    values.push_back((1ull << shift) - 1);
    values.push_back((1ull << shift) + 1);
  }
  expect_quantiles_within_bound(values);
}

TEST(MetricsHistogramTest, QuantilesConstantAndTwoPoint) {
  expect_quantiles_within_bound(std::vector<std::uint64_t>(1000, 42));
  std::vector<std::uint64_t> two_point(500, 10);
  two_point.insert(two_point.end(), 500, 1000000);
  expect_quantiles_within_bound(two_point);
}

TEST(MetricsHistogramTest, EmptyAndSingleValue) {
  Histogram hist;
  EXPECT_EQ(hist.snapshot().count, 0u);
  EXPECT_EQ(hist.snapshot().quantile(0.5), 0u);
  hist.record(12345);
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.min, 12345u);
  EXPECT_EQ(snap.max, 12345u);
  // A single value: every quantile is clamped to the exact max.
  EXPECT_EQ(snap.quantile(0.0), 12345u);
  EXPECT_EQ(snap.quantile(1.0), 12345u);
}

// ---------------------------------------------------------------------------
// Merge identity

TEST(MetricsHistogramTest, MergeEqualsRecordingBothStreams) {
  std::mt19937_64 rng(23);
  Histogram a, b, both;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t low = rng() % 10000;
    const std::uint64_t high = 1000000 + rng() % 100000000;
    a.record(low);
    both.record(low);
    b.record(high);
    both.record(high);
  }
  HistogramSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  const HistogramSnapshot expected = both.snapshot();
  EXPECT_EQ(merged.count, expected.count);
  EXPECT_EQ(merged.sum, expected.sum);
  EXPECT_EQ(merged.min, expected.min);
  EXPECT_EQ(merged.max, expected.max);
  EXPECT_EQ(merged.buckets, expected.buckets);
}

TEST(MetricsHistogramTest, MergeWithEmptyIsIdentity) {
  Histogram a;
  a.record(7);
  a.record(99);
  HistogramSnapshot snap = a.snapshot();
  snap.merge(HistogramSnapshot{});
  EXPECT_EQ(snap.buckets, a.snapshot().buckets);
  HistogramSnapshot empty;
  empty.merge(a.snapshot());
  EXPECT_EQ(empty.buckets, a.snapshot().buckets);
  EXPECT_EQ(empty.count, a.snapshot().count);
}

TEST(MetricsHistogramTest, ConcurrentRecordingLosesNothing) {
  Histogram hist;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i)
        hist.record(static_cast<std::uint64_t>(t) * 1000 + i % 997);
    });
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(hist.snapshot().count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// ---------------------------------------------------------------------------
// Registry

TEST(MetricsRegistryTest, GetOrCreateReturnsStableHandles) {
  MetricsRegistry registry;
  Counter& c1 = registry.counter("requests", "method=\"ping\"");
  Counter& c2 = registry.counter("requests", "method=\"ping\"");
  EXPECT_EQ(&c1, &c2);
  Counter& other = registry.counter("requests", "method=\"stats\"");
  EXPECT_NE(&c1, &other);
  c1.add(3);
  EXPECT_EQ(c2.value(), 3u);
}

TEST(MetricsRegistryTest, HelpKeptFromFirstRegistration) {
  MetricsRegistry registry;
  registry.counter("x", "", "first");
  registry.counter("x", "a=\"b\"", "second");
  EXPECT_EQ(registry.help("x"), "first");
  EXPECT_EQ(registry.help("missing"), "");
}

TEST(MetricsRegistryTest, SnapshotSeesAllThreeKinds) {
  MetricsRegistry registry;
  registry.counter("c").add(2);
  registry.gauge("g").set(1.5);
  registry.histogram("h").record(10);
  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].value, 2.0);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, 1.5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].hist.count, 1u);
}

// ---------------------------------------------------------------------------
// Exporters

TEST(MetricsExportTest, PrometheusTextFormat) {
  MetricsRegistry registry;
  registry.counter("app_requests_total", "method=\"ping\"", "Requests")
      .add(4);
  registry.gauge("app_depth", "", "Depth").set(2);
  Histogram& hist = registry.histogram("app_latency_ns", "", "Latency");
  hist.record(5);
  hist.record(100);
  const std::string text =
      prometheus_text(registry.snapshot(), registry.help_texts());

  EXPECT_NE(text.find("# HELP app_requests_total Requests\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE app_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("app_requests_total{method=\"ping\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE app_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("app_depth 2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE app_latency_ns histogram\n"),
            std::string::npos);
  // Cumulative buckets ending in +Inf == count, plus _sum/_count.
  EXPECT_NE(text.find("app_latency_ns_bucket{le=\"5\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("app_latency_ns_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("app_latency_ns_sum 105\n"), std::string::npos);
  EXPECT_NE(text.find("app_latency_ns_count 2\n"), std::string::npos);
}

TEST(MetricsExportTest, JsonSnapshotParsesAndCarriesQuantiles) {
  MetricsRegistry registry;
  registry.counter("c", "k=\"v\"").add(1);
  Histogram& hist = registry.histogram("h");
  for (std::uint64_t v = 1; v <= 100; ++v) hist.record(v);
  const obs::JsonValue doc = parse_json(metrics_json(registry.snapshot()));
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("counters").at("c{k=\"v\"}").number, 1.0);
  const obs::JsonValue& h = doc.at("histograms").at("h");
  EXPECT_EQ(h.at("count").number, 100.0);
  EXPECT_GE(h.at("p50").number, 50.0);
  EXPECT_LE(h.at("p99").number, 100.0 * (1.0 + 1.0 / 32) + 1);
  EXPECT_EQ(h.at("max").number, 100.0);
}

}  // namespace
}  // namespace perftrack::obs
