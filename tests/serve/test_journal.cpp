// Journal framing + recovery semantics, exercised directly (no service).
//
// The crash-injection cases drive the journal's own failpoints
// (journal_torn_write / journal_short_write / journal_fsync_error) and the
// raw file bytes: a torn tail or a flipped byte must truncate at the last
// good record, an unreadable file must be quarantined, and a tombstone must
// delete — never crash the scan or eat a neighbouring study.

#include "serve/journal.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/failpoint.hpp"

namespace perftrack::serve {
namespace {

namespace fs = std::filesystem;

class JournalTest : public ::testing::Test {
protected:
  void SetUp() override {
    failpoint::clear();
    dir_ = fs::path(::testing::TempDir()) /
           ("pt_journal_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override {
    failpoint::clear();
    fs::remove_all(dir_);
  }

  JournalConfig config(FsyncMode fsync = FsyncMode::Always) const {
    JournalConfig config;
    config.directory = dir_.string();
    config.fsync = fsync;
    return config;
  }

  tracking::SessionConfig session() const {
    tracking::SessionConfig session;
    session.clustering.dbscan.eps = 0.07;
    session.clustering.dbscan.min_pts = 4;
    session.resilience.lenient = true;
    return session;
  }

  static AppendEntry entry(AppendEntry::Kind kind, const std::string& label,
                           const std::string& detail, std::uint64_t seq) {
    AppendEntry e;
    e.kind = kind;
    e.label = label;
    e.detail = detail;
    e.seq = seq;
    return e;
  }

  std::string file_bytes(const fs::path& path) const {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }

  void write_bytes(const fs::path& path, const std::string& bytes) const {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  fs::path journal_path(const std::string& study) const {
    return dir_ / journal_file_name(study);
  }

  fs::path dir_;
};

TEST_F(JournalTest, FileNameEscapingIsInjective) {
  EXPECT_EQ(journal_file_name("wrf"), "wrf.journal");
  EXPECT_NE(journal_file_name("a/b"), journal_file_name("a_b"));
  EXPECT_NE(journal_file_name("a b"), journal_file_name("a%20b"));
  // No path separators survive escaping.
  EXPECT_EQ(journal_file_name("../evil").find('/'), std::string::npos);
}

TEST_F(JournalTest, FsyncModeNamesRoundTrip) {
  EXPECT_EQ(fsync_mode_from_name("always"), FsyncMode::Always);
  EXPECT_EQ(fsync_mode_from_name("batch"), FsyncMode::Batch);
  EXPECT_EQ(fsync_mode_from_name("off"), FsyncMode::Off);
  EXPECT_EQ(fsync_mode_name(FsyncMode::Batch), "batch");
  EXPECT_THROW(fsync_mode_from_name("sometimes"), Error);
}

TEST_F(JournalTest, RoundTripRecoversEntriesAndConfig) {
  auto journal = Journal::create(config(), "wrf", session());
  journal->append(entry(AppendEntry::Kind::Path, "/tmp/a.ptt", "", 1));
  journal->append(entry(AppendEntry::Kind::Inline, "run2", "trace text", 2));
  journal->append(entry(AppendEntry::Kind::Gap, "crash", "node died", 3));
  journal.reset();

  tracking::SessionConfig base;  // defaults differ from session()
  RecoveryReport report = recover_state_dir(config(), base);
  ASSERT_EQ(report.studies.size(), 1u);
  EXPECT_EQ(report.truncated, 0u);
  EXPECT_EQ(report.quarantined, 0u);

  const RecoveredStudy& study = report.studies.front();
  EXPECT_EQ(study.name, "wrf");
  EXPECT_DOUBLE_EQ(study.config.clustering.dbscan.eps, 0.07);
  EXPECT_EQ(study.config.clustering.dbscan.min_pts, 4u);
  EXPECT_TRUE(study.config.resilience.lenient);
  EXPECT_EQ(study.last_seq, 3u);
  EXPECT_FALSE(study.truncated);
  ASSERT_EQ(study.entries.size(), 3u);
  EXPECT_EQ(study.entries[0].kind, AppendEntry::Kind::Path);
  EXPECT_EQ(study.entries[0].label, "/tmp/a.ptt");
  EXPECT_EQ(study.entries[1].kind, AppendEntry::Kind::Inline);
  EXPECT_EQ(study.entries[1].detail, "trace text");
  EXPECT_EQ(study.entries[2].kind, AppendEntry::Kind::Gap);
  EXPECT_EQ(study.entries[2].seq, 3u);
}

TEST_F(JournalTest, MissingDirectoryRecoversNothing) {
  RecoveryReport report = recover_state_dir(config(), session());
  EXPECT_TRUE(report.studies.empty());
  EXPECT_EQ(report.quarantined, 0u);
}

TEST_F(JournalTest, TornTailIsTruncatedAtLastGoodRecord) {
  auto journal = Journal::create(config(), "wrf", session());
  journal->append(entry(AppendEntry::Kind::Path, "a.ptt", "", 1));
  journal->append(entry(AppendEntry::Kind::Path, "b.ptt", "", 2));
  journal.reset();

  // Chop bytes off the tail: a crash mid-write leaves a partial frame.
  const fs::path path = journal_path("wrf");
  std::string bytes = file_bytes(path);
  write_bytes(path, bytes.substr(0, bytes.size() - 5));

  RecoveryReport report = recover_state_dir(config(), session());
  ASSERT_EQ(report.studies.size(), 1u);
  EXPECT_EQ(report.truncated, 1u);
  EXPECT_TRUE(report.studies.front().truncated);
  ASSERT_EQ(report.studies.front().entries.size(), 1u);
  EXPECT_EQ(report.studies.front().entries[0].label, "a.ptt");
  // The file was healed in place: a second scan is clean.
  RecoveryReport again = recover_state_dir(config(), session());
  EXPECT_EQ(again.truncated, 0u);
  ASSERT_EQ(again.studies.size(), 1u);
  EXPECT_EQ(again.studies.front().entries.size(), 1u);
}

TEST_F(JournalTest, CorruptChecksumTruncatesFromBadRecordOn) {
  auto journal = Journal::create(config(), "wrf", session());
  journal->append(entry(AppendEntry::Kind::Path, "a.ptt", "", 1));
  journal->append(entry(AppendEntry::Kind::Path, "b.ptt", "", 2));
  journal.reset();

  // Flip one payload byte of the final record: its checksum no longer
  // matches, so recovery must cut the file there.
  const fs::path path = journal_path("wrf");
  std::string bytes = file_bytes(path);
  bytes[bytes.size() - 2] ^= 0x5a;
  write_bytes(path, bytes);

  RecoveryReport report = recover_state_dir(config(), session());
  ASSERT_EQ(report.studies.size(), 1u);
  EXPECT_EQ(report.truncated, 1u);
  ASSERT_EQ(report.studies.front().entries.size(), 1u);
  EXPECT_EQ(report.studies.front().entries[0].label, "a.ptt");
  EXPECT_LT(fs::file_size(path), bytes.size());
}

TEST_F(JournalTest, GarbageFileIsQuarantinedOthersSurvive) {
  auto journal = Journal::create(config(), "good", session());
  journal->append(entry(AppendEntry::Kind::Path, "a.ptt", "", 1));
  journal.reset();
  write_bytes(dir_ / "bad.journal", "this is not a journal at all");

  RecoveryReport report = recover_state_dir(config(), session());
  EXPECT_EQ(report.quarantined, 1u);
  ASSERT_EQ(report.studies.size(), 1u);
  EXPECT_EQ(report.studies.front().name, "good");
  EXPECT_FALSE(fs::exists(dir_ / "bad.journal"));
  EXPECT_TRUE(fs::exists(dir_ / "bad.journal.quarantined"));
  // Quarantined files are not rescanned.
  RecoveryReport again = recover_state_dir(config(), session());
  EXPECT_EQ(again.quarantined, 0u);
  EXPECT_EQ(again.studies.size(), 1u);
}

TEST_F(JournalTest, HeaderOnlyFileWithoutCreateIsQuarantined) {
  fs::create_directories(dir_);
  write_bytes(dir_ / "empty.journal", std::string("PTJL\x01\x00\x00\x00", 8));
  RecoveryReport report = recover_state_dir(config(), session());
  EXPECT_EQ(report.quarantined, 1u);
  EXPECT_TRUE(report.studies.empty());
  EXPECT_TRUE(fs::exists(dir_ / "empty.journal.quarantined"));
}

TEST_F(JournalTest, FilenameMismatchIsQuarantined) {
  auto journal = Journal::create(config(), "wrf", session());
  journal.reset();
  // A journal claiming study "wrf" parked under another study's file name
  // (copied by hand, tampered with) must not hijack that study.
  fs::copy_file(journal_path("wrf"), journal_path("gromacs"));
  RecoveryReport report = recover_state_dir(config(), session());
  EXPECT_EQ(report.quarantined, 1u);
  ASSERT_EQ(report.studies.size(), 1u);
  EXPECT_EQ(report.studies.front().name, "wrf");
}

TEST_F(JournalTest, TombstoneDeletesTheStudyOnNextBoot) {
  auto journal = Journal::create(config(), "wrf", session());
  journal->append(entry(AppendEntry::Kind::Path, "a.ptt", "", 1));
  const fs::path path = journal_path("wrf");
  // Simulate a crash between the tombstone write and the unlink: hard-link
  // the file so the bytes (ending in the Remove record) survive the unlink.
  const fs::path keep = dir_ / "keep";
  fs::create_hard_link(path, keep);
  journal->remove_and_unlink();
  journal.reset();
  EXPECT_FALSE(fs::exists(path));
  fs::rename(keep, path);

  RecoveryReport report = recover_state_dir(config(), session());
  EXPECT_EQ(report.tombstones, 1u);
  EXPECT_TRUE(report.studies.empty());
  EXPECT_FALSE(fs::exists(path)) << "tombstoned journal must be deleted";
}

TEST_F(JournalTest, DuplicateSeqIsSkippedDuringReplay) {
  auto journal = Journal::create(config(), "wrf", session());
  // The journal itself does not dedupe (the service does, before writing);
  // a duplicate on disk is what a crash racing a batched fsync plus a
  // client retry leaves behind.
  journal->append(entry(AppendEntry::Kind::Path, "a.ptt", "", 7));
  journal->append(entry(AppendEntry::Kind::Path, "a.ptt", "", 7));
  journal->append(entry(AppendEntry::Kind::Path, "b.ptt", "", 8));
  journal.reset();

  RecoveryReport report = recover_state_dir(config(), session());
  EXPECT_EQ(report.deduped, 1u);
  ASSERT_EQ(report.studies.size(), 1u);
  ASSERT_EQ(report.studies.front().entries.size(), 2u);
  EXPECT_EQ(report.studies.front().entries[0].label, "a.ptt");
  EXPECT_EQ(report.studies.front().entries[1].label, "b.ptt");
  EXPECT_EQ(report.studies.front().last_seq, 8u);
}

TEST_F(JournalTest, TornWriteFailpointBreaksJournalAndRecoveryHeals) {
  auto journal = Journal::create(config(), "wrf", session());
  journal->append(entry(AppendEntry::Kind::Path, "a.ptt", "", 1));

  failpoint::activate("journal_torn_write", "error");
  EXPECT_THROW(
      journal->append(entry(AppendEntry::Kind::Path, "b.ptt", "", 2)),
      IoError);
  failpoint::clear();
  // The simulated crash leaves the tail torn and the handle refuses
  // further appends — exactly a dead daemon.
  EXPECT_THROW(
      journal->append(entry(AppendEntry::Kind::Path, "c.ptt", "", 3)),
      IoError);
  EXPECT_EQ(journal->records(), 2u);  // create + first append
  journal.reset();

  RecoveryReport report = recover_state_dir(config(), session());
  EXPECT_EQ(report.truncated, 1u);
  ASSERT_EQ(report.studies.size(), 1u);
  ASSERT_EQ(report.studies.front().entries.size(), 1u);
  EXPECT_EQ(report.studies.front().entries[0].label, "a.ptt");
}

TEST_F(JournalTest, ShortWriteFailpointHealsTailInPlace) {
  auto journal = Journal::create(config(), "wrf", session());
  journal->append(entry(AppendEntry::Kind::Path, "a.ptt", "", 1));
  const std::uint64_t bytes_before = journal->bytes();

  failpoint::activate("journal_short_write", "@1");
  EXPECT_THROW(
      journal->append(entry(AppendEntry::Kind::Path, "b.ptt", "", 2)),
      IoError);
  failpoint::clear();

  // An ENOSPC-style failure healed its own tail: the journal is still
  // usable and the failed record left no bytes behind.
  EXPECT_EQ(journal->bytes(), bytes_before);
  journal->append(entry(AppendEntry::Kind::Path, "c.ptt", "", 3));
  journal.reset();

  RecoveryReport report = recover_state_dir(config(), session());
  EXPECT_EQ(report.truncated, 0u);
  ASSERT_EQ(report.studies.size(), 1u);
  ASSERT_EQ(report.studies.front().entries.size(), 2u);
  EXPECT_EQ(report.studies.front().entries[1].label, "c.ptt");
}

TEST_F(JournalTest, FsyncErrorRollsTheAppendBack) {
  auto journal = Journal::create(config(FsyncMode::Always), "wrf", session());
  journal->append(entry(AppendEntry::Kind::Path, "a.ptt", "", 1));
  const std::uint64_t records_before = journal->records();
  const std::uint64_t bytes_before = journal->bytes();

  failpoint::activate("journal_fsync_error", "@1");
  EXPECT_THROW(
      journal->append(entry(AppendEntry::Kind::Path, "b.ptt", "", 2)),
      IoError);
  failpoint::clear();

  // Write-ahead contract: a failed fsync means the append never happened —
  // on disk (tail healed) or in the counters.
  EXPECT_EQ(journal->records(), records_before);
  EXPECT_EQ(journal->bytes(), bytes_before);

  RecoveryReport report = recover_state_dir(config(), session());
  ASSERT_EQ(report.studies.size(), 1u);
  EXPECT_EQ(report.studies.front().entries.size(), 1u);
}

TEST_F(JournalTest, CompactionPreservesTheLogAndShrinksTheFile) {
  JournalConfig cfg = config();
  cfg.compact_threshold = 4;
  auto journal = Journal::create(cfg, "wrf", session());
  std::vector<AppendEntry> live;
  for (int i = 0; i < 4; ++i) {
    AppendEntry e = entry(AppendEntry::Kind::Inline, "run" + std::to_string(i),
                          std::string(200, 'x'), static_cast<unsigned>(i + 1));
    journal->append(e);
    live.push_back(e);
  }
  ASSERT_TRUE(journal->should_compact());
  const std::uint64_t bytes_before = journal->bytes();

  // Compact to a live set that dropped the bulky details (what the service
  // holds after the entries were applied): the snapshot must shrink.
  std::vector<AppendEntry> compacted = live;
  for (auto& e : compacted) {
    e.kind = AppendEntry::Kind::Path;
    e.detail.clear();
  }
  journal->compact("wrf", session(), compacted);
  EXPECT_EQ(journal->compactions(), 1u);
  EXPECT_FALSE(journal->should_compact());
  EXPECT_LT(journal->bytes(), bytes_before);

  // The rewritten journal still appends and still replays byte-for-byte.
  journal->append(entry(AppendEntry::Kind::Path, "post", "", 9));
  journal.reset();
  RecoveryReport report = recover_state_dir(cfg, session());
  ASSERT_EQ(report.studies.size(), 1u);
  ASSERT_EQ(report.studies.front().entries.size(), 5u);
  EXPECT_EQ(report.studies.front().entries[0].label, "run0");
  EXPECT_EQ(report.studies.front().entries[4].label, "post");
  EXPECT_EQ(report.studies.front().last_seq, 9u);
}

TEST_F(JournalTest, EveryFsyncModeRoundTrips) {
  for (FsyncMode mode :
       {FsyncMode::Always, FsyncMode::Batch, FsyncMode::Off}) {
    const std::string study =
        "study_" + std::string(fsync_mode_name(mode));
    auto journal = Journal::create(config(mode), study, session());
    journal->append(entry(AppendEntry::Kind::Path, "a.ptt", "", 1));
    journal->sync();
    journal.reset();
  }
  RecoveryReport report = recover_state_dir(config(), session());
  EXPECT_EQ(report.studies.size(), 3u);
  for (const RecoveredStudy& study : report.studies)
    EXPECT_EQ(study.entries.size(), 1u);
}

TEST_F(JournalTest, EscapedStudyNameRoundTrips) {
  const std::string study = "weird name/with:chars?";
  auto journal = Journal::create(config(), study, session());
  journal->append(entry(AppendEntry::Kind::Path, "a.ptt", "", 1));
  journal.reset();
  RecoveryReport report = recover_state_dir(config(), session());
  ASSERT_EQ(report.studies.size(), 1u);
  EXPECT_EQ(report.studies.front().name, study);
}

}  // namespace
}  // namespace perftrack::serve
