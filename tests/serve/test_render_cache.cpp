// The versioned render cache: generation-keyed invalidation, byte-identical
// hits, eviction survival, and the read-while-append race (run under tsan
// by the concurrency preset).

#include "serve/render_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "serve/service.hpp"
#include "testing/test_traces.hpp"
#include "trace/trace_io.hpp"

namespace perftrack::serve {
namespace {

using perftrack::testing::MiniPhase;
using perftrack::testing::MiniTraceSpec;
using perftrack::testing::make_mini_trace;

std::string trace_text(const std::string& label, std::uint64_t seed) {
  MiniTraceSpec spec;
  spec.label = label;
  spec.seed = seed;
  spec.noise = 0.02;
  spec.phases = {MiniPhase{8e6, 1.0, {"p1", "x.c", 1}},
                 MiniPhase{1e6, 2.0, {"p2", "x.c", 2}}};
  std::ostringstream out;
  trace::write_trace(out, *make_mini_trace(spec));
  return out.str();
}

ServiceConfig test_config() {
  ServiceConfig config;
  config.session.clustering.dbscan.eps = 0.05;
  config.session.clustering.dbscan.min_pts = 3;
  return config;
}

Response line(TrackingService& service, const std::string& request) {
  return service.handle_line(request);
}

std::string ok_line(TrackingService& service, const std::string& request) {
  Response response = line(service, request);
  EXPECT_TRUE(response.ok) << response.message;
  return render_response(response);
}

void append(TrackingService& service, const std::string& study,
            const std::string& label, std::uint64_t seed) {
  obs::JsonWriter json;
  json.begin_object();
  json.key("method").value("append_experiment");
  json.key("study").value(study);
  json.key("params").begin_object();
  json.key("trace").value(trace_text(label, seed));
  json.key("label").value(label);
  json.end_object();
  json.end_object();
  ok_line(service, json.str());
}

double stat_number(TrackingService& service, const std::string& study,
                   const char* outer, const char* inner = nullptr) {
  Response response = service.handle_line(
      study.empty() ? std::string(R"({"method":"stats"})")
                    : R"({"method":"stats","study":")" + study + "\"}");
  EXPECT_TRUE(response.ok) << response.message;
  obs::JsonValue stats = obs::parse_json(response.result_json);
  const obs::JsonValue& v = inner ? stats.at(outer).at(inner)
                                  : stats.at(outer);
  return v.number;
}

// ---------------------------------------------------------------------------
// Unit level

TEST(RenderCacheTest, MissThenHitThenCounters) {
  RenderCache cache(64);
  const std::string key = RenderCache::key("wrf", 1, 3, "regions");
  EXPECT_EQ(cache.get(key), nullptr);
  cache.put(key, std::make_shared<const std::string>("bytes"));
  auto hit = cache.get(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "bytes");
  RenderCache::Counters counters = cache.counters();
  EXPECT_EQ(counters.hits, 1u);
  EXPECT_EQ(counters.misses, 1u);
  EXPECT_EQ(counters.inserts, 1u);
  EXPECT_EQ(counters.entries, 1u);
}

TEST(RenderCacheTest, KeySeparatesStudyInstanceGenerationAndShape) {
  // Adjacent fields must not be able to alias by concatenation.
  EXPECT_NE(RenderCache::key("a", 1, 2, "regions"),
            RenderCache::key("a", 1, 3, "regions"));
  EXPECT_NE(RenderCache::key("a", 1, 2, "regions"),
            RenderCache::key("a", 2, 2, "regions"));
  EXPECT_NE(RenderCache::key("a", 1, 2, "regions"),
            RenderCache::key("b", 1, 2, "regions"));
  EXPECT_NE(RenderCache::key("a", 1, 2, "trends:IPC"),
            RenderCache::key("a", 1, 2, "trends:Instructions"));
  EXPECT_NE(RenderCache::key("a", 11, 2, "x"),
            RenderCache::key("a", 1, 12, "x"));
}

TEST(RenderCacheTest, ZeroCapacityDisables) {
  RenderCache cache(0);
  const std::string key = RenderCache::key("s", 1, 1, "regions");
  cache.put(key, std::make_shared<const std::string>("bytes"));
  EXPECT_EQ(cache.get(key), nullptr);
  EXPECT_EQ(cache.counters().entries, 0u);
}

TEST(RenderCacheTest, CapacityBoundsResidentEntries) {
  RenderCache cache(32);  // 2 per internal shard
  for (int i = 0; i < 1000; ++i)
    cache.put(RenderCache::key("s", 1, static_cast<std::uint64_t>(i), "r"),
              std::make_shared<const std::string>("x"));
  RenderCache::Counters counters = cache.counters();
  EXPECT_LE(counters.entries, 32u);
  EXPECT_EQ(counters.inserts, 1000u);
  EXPECT_EQ(counters.evictions, counters.inserts - counters.entries);
}

// ---------------------------------------------------------------------------
// Service level

TEST(RenderCacheServiceTest, CacheHitIsByteIdentical) {
  TrackingService service(test_config());
  ok_line(service, R"({"method":"open_study","study":"s"})");
  append(service, "s", "A", 1);
  append(service, "s", "B", 2);

  const std::string first =
      ok_line(service, R"({"id":1,"method":"regions","study":"s"})");
  const std::string second =
      ok_line(service, R"({"id":1,"method":"regions","study":"s"})");
  EXPECT_EQ(first, second);

  RenderCache::Counters counters = service.render_cache().counters();
  EXPECT_EQ(counters.hits, 1u);
  EXPECT_EQ(counters.misses, 1u);

  // Same study, different shape: trends and report are cached separately.
  ok_line(service, R"({"method":"trends","study":"s"})");
  ok_line(service, R"({"method":"trends","study":"s"})");
  ok_line(service, R"({"method":"report","study":"s"})");
  counters = service.render_cache().counters();
  EXPECT_EQ(counters.hits, 2u);
  EXPECT_EQ(counters.misses, 3u);
}

TEST(RenderCacheServiceTest, AppendBumpsGenerationAndInvalidates) {
  TrackingService service(test_config());
  ok_line(service, R"({"method":"open_study","study":"s"})");
  append(service, "s", "A", 1);
  append(service, "s", "B", 2);
  EXPECT_EQ(stat_number(service, "s", "generation"), 2.0);

  ok_line(service, R"({"method":"regions","study":"s"})");  // miss, insert
  append(service, "s", "C", 3);  // generation 2 -> 3
  EXPECT_EQ(stat_number(service, "s", "generation"), 3.0);

  // The next read must not serve the 2-experiment bytes.
  Response fresh =
      service.handle_line(R"({"method":"regions","study":"s"})");
  ASSERT_TRUE(fresh.ok) << fresh.message;
  obs::JsonValue regions = obs::parse_json(fresh.result_json);
  EXPECT_EQ(regions.at("experiments").number, 3.0);

  RenderCache::Counters counters = service.render_cache().counters();
  EXPECT_EQ(counters.hits, 0u);
  EXPECT_EQ(counters.misses, 2u);
}

TEST(RenderCacheServiceTest, GapAppendInvalidatesToo) {
  ServiceConfig config = test_config();
  config.session.resilience.lenient = true;
  TrackingService service(config);
  ok_line(service, R"({"method":"open_study","study":"s"})");
  append(service, "s", "A", 1);
  append(service, "s", "B", 2);
  ok_line(service, R"({"method":"regions","study":"s"})");
  EXPECT_EQ(stat_number(service, "s", "generation"), 2.0);

  ok_line(service,
          R"({"method":"append_gap","study":"s",)"
          R"("params":{"label":"lost.ptt","reason":"unreadable"}})");
  EXPECT_EQ(stat_number(service, "s", "generation"), 3.0);

  Response fresh =
      service.handle_line(R"({"method":"regions","study":"s"})");
  ASSERT_TRUE(fresh.ok) << fresh.message;
  EXPECT_EQ(service.render_cache().counters().hits, 0u);
}

TEST(RenderCacheServiceTest, EvictedStudyKeepsServingFromCache) {
  TrackingService service(test_config());
  ok_line(service, R"({"method":"open_study","study":"s"})");
  append(service, "s", "A", 1);
  append(service, "s", "B", 2);

  const std::string before =
      ok_line(service, R"({"id":7,"method":"regions","study":"s"})");
  ok_line(service, R"({"method":"evict","study":"s"})");
  EXPECT_EQ(stat_number(service, "", "resident_sessions"), 0.0);

  // Cached render, not a rebuild: the session stays evicted.
  const std::string after =
      ok_line(service, R"({"id":7,"method":"regions","study":"s"})");
  EXPECT_EQ(before, after);
  EXPECT_EQ(stat_number(service, "", "resident_sessions"), 0.0);
  EXPECT_EQ(stat_number(service, "", "rebuilds"), 0.0);
  EXPECT_EQ(service.render_cache().counters().hits, 1u);

  // An uncached shape forces the rebuild — and stays byte-compatible.
  Response trends =
      service.handle_line(R"({"method":"trends","study":"s"})");
  ASSERT_TRUE(trends.ok) << trends.message;
  EXPECT_EQ(stat_number(service, "", "rebuilds"), 1.0);
}

TEST(RenderCacheServiceTest, ReopenedStudyDoesNotCollide) {
  // close_study then open_study restarts generations at zero; the
  // instance id must keep the old entries from answering for the new
  // study's (different) contents.
  TrackingService service(test_config());
  ok_line(service, R"({"method":"open_study","study":"s"})");
  append(service, "s", "A", 1);
  append(service, "s", "B", 2);
  ok_line(service, R"({"method":"regions","study":"s"})");
  ok_line(service, R"({"method":"close_study","study":"s"})");

  ok_line(service, R"({"method":"open_study","study":"s"})");
  append(service, "s", "C", 3);
  append(service, "s", "D", 4);
  Response fresh =
      service.handle_line(R"({"method":"regions","study":"s"})");
  ASSERT_TRUE(fresh.ok) << fresh.message;
  EXPECT_EQ(service.render_cache().counters().hits, 0u);
}

TEST(RenderCacheServiceTest, ConcurrentReadsWhileAppending) {
  // tsan target: pooled readers hammer regions/trends while a writer
  // appends. Every response must be ok and reflect a consistent
  // generation (no torn renders, no data races).
  TrackingService service(test_config());
  ok_line(service, R"({"method":"open_study","study":"s"})");
  append(service, "s", "A", 1);
  append(service, "s", "B", 2);

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&service, &stop] {
      while (!stop.load(std::memory_order_acquire)) {
        Response r =
            service.handle_line(R"({"method":"regions","study":"s"})");
        EXPECT_TRUE(r.ok) << r.message;
        Response trends =
            service.handle_line(R"({"method":"trends","study":"s"})");
        EXPECT_TRUE(trends.ok) << trends.message;
      }
    });
  }
  for (std::uint64_t seed = 3; seed < 7; ++seed)
    append(service, "s", "E" + std::to_string(seed), seed);
  stop.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();

  Response final_read =
      service.handle_line(R"({"method":"regions","study":"s"})");
  ASSERT_TRUE(final_read.ok) << final_read.message;
  EXPECT_EQ(obs::parse_json(final_read.result_json).at("experiments").number,
            6.0);
}

}  // namespace
}  // namespace perftrack::serve
