// TrackingService endpoint semantics, exercised without any transport.
// The load-bearing test is DaemonReadsMatchBatchPipeline: what the daemon
// serves must be byte-identical to a batch perftrack run over the same
// experiment sequence.

#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <sstream>
#include <string>

#include "obs/json.hpp"
#include "testing/test_traces.hpp"
#include "trace/trace_io.hpp"
#include "tracking/pipeline.hpp"
#include "tracking/report.hpp"
#include "tracking/trends.hpp"

namespace perftrack::serve {
namespace {

namespace fs = std::filesystem;

using perftrack::testing::MiniPhase;
using perftrack::testing::MiniTraceSpec;
using perftrack::testing::make_mini_trace;

std::shared_ptr<const trace::Trace> experiment(const std::string& label,
                                               std::uint64_t seed,
                                               double noise = 0.02) {
  MiniTraceSpec spec;
  spec.label = label;
  spec.seed = seed;
  spec.noise = noise;
  spec.phases = {MiniPhase{8e6, 1.0, {"p1", "x.c", 1}},
                 MiniPhase{1e6, 2.0, {"p2", "x.c", 2}}};
  return make_mini_trace(spec);
}

std::string trace_text(const std::string& label, std::uint64_t seed) {
  std::ostringstream out;
  trace::write_trace(out, *experiment(label, seed));
  return out.str();
}

tracking::SessionConfig test_session_config() {
  tracking::SessionConfig config;
  config.clustering.dbscan.eps = 0.05;
  config.clustering.dbscan.min_pts = 3;
  return config;
}

ServiceConfig test_config() {
  ServiceConfig config;
  config.session = test_session_config();
  return config;
}

/// Build a request directly (no JSON round-trip needed for service tests).
Request req(const std::string& method, const std::string& study = "") {
  Request r;
  r.method = method;
  r.study = study;
  return r;
}

void set_param(Request& r, const std::string& name, const std::string& v) {
  r.params.type = obs::JsonValue::Type::Object;
  obs::JsonValue value;
  value.type = obs::JsonValue::Type::String;
  value.string = v;
  r.params.object[name] = std::move(value);
}

void set_param(Request& r, const std::string& name, double v) {
  r.params.type = obs::JsonValue::Type::Object;
  obs::JsonValue value;
  value.type = obs::JsonValue::Type::Number;
  value.number = v;
  r.params.object[name] = std::move(value);
}

void set_param(Request& r, const std::string& name, bool v) {
  r.params.type = obs::JsonValue::Type::Object;
  obs::JsonValue value;
  value.type = obs::JsonValue::Type::Bool;
  value.boolean = v;
  r.params.object[name] = std::move(value);
}

/// Handle and require success; returns the parsed result object.
obs::JsonValue ok(TrackingService& service, const Request& request) {
  Response response = service.handle(request);
  EXPECT_TRUE(response.ok) << response.message;
  return obs::parse_json(response.result_json);
}

/// Handle and require a typed failure.
Response fail(TrackingService& service, const Request& request,
              ErrorCode code) {
  Response response = service.handle(request);
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.code, code) << response.message;
  return response;
}

void append_inline(TrackingService& service, const std::string& study,
                   const std::string& label, std::uint64_t seed) {
  Request r = req("append_experiment", study);
  set_param(r, "trace", trace_text(label, seed));
  set_param(r, "label", label);
  ok(service, r);
}

TEST(ServiceTest, PingPongs) {
  TrackingService service(test_config());
  EXPECT_TRUE(ok(service, req("ping")).at("pong").boolean);
}

TEST(ServiceTest, UnknownMethodAndUnknownStudyAreTyped) {
  TrackingService service(test_config());
  fail(service, req("frobnicate"), ErrorCode::UnknownMethod);
  fail(service, req("regions", "nope"), ErrorCode::UnknownStudy);
  fail(service, req("regions"), ErrorCode::BadRequest);  // no study field
}

TEST(ServiceTest, OpenStudyIsExclusiveAndCloseForgets) {
  TrackingService service(test_config());
  ok(service, req("open_study", "a"));
  fail(service, req("open_study", "a"), ErrorCode::StudyExists);
  obs::JsonValue list = ok(service, req("list_studies"));
  ASSERT_EQ(list.at("studies").array.size(), 1u);
  EXPECT_EQ(list.at("studies").array[0].string, "a");
  ok(service, req("close_study", "a"));
  fail(service, req("regions", "a"), ErrorCode::UnknownStudy);
  ok(service, req("open_study", "a"));  // name reusable after close
}

TEST(ServiceTest, OpenStudyValidatesOverriddenConfig) {
  TrackingService service(test_config());
  Request r = req("open_study", "bad");
  set_param(r, "eps", -1.0);
  Response response = fail(service, r, ErrorCode::InvalidConfig);
  EXPECT_NE(response.message.find("eps"), std::string::npos);
  // The failed open must not leak a half-created study.
  fail(service, req("regions", "bad"), ErrorCode::UnknownStudy);
}

TEST(ServiceTest, ReadsBeforeTwoAppendsAreBadRequests) {
  TrackingService service(test_config());
  ok(service, req("open_study", "a"));
  fail(service, req("retrack", "a"), ErrorCode::BadRequest);
  append_inline(service, "a", "E1", 1);
  fail(service, req("regions", "a"), ErrorCode::BadRequest);
}

TEST(ServiceTest, DaemonReadsMatchBatchPipeline) {
  // The acceptance criterion: after N appends, regions/trends/coverage are
  // byte-identical to the batch pipeline over the same traces.
  auto a = experiment("A", 1);
  auto b = experiment("B", 2);
  auto c = experiment("C", 3);

  tracking::TrackingPipeline batch;
  batch.set_config(test_session_config());
  for (const auto& t : {a, b, c}) batch.add_experiment(t);
  tracking::TrackingResult expected = batch.run();

  TrackingService service(test_config());
  ok(service, req("open_study", "s"));
  append_inline(service, "s", "A", 1);
  append_inline(service, "s", "B", 2);
  append_inline(service, "s", "C", 3);

  obs::JsonValue regions = ok(service, req("regions", "s"));
  EXPECT_EQ(regions.at("text").string, tracking::describe_tracking(expected));
  EXPECT_EQ(static_cast<std::size_t>(regions.at("regions").number),
            expected.regions.size());
  EXPECT_DOUBLE_EQ(regions.at("coverage").number, expected.coverage);

  obs::JsonValue trends = ok(service, req("trends", "s"));
  EXPECT_EQ(trends.at("csv").string, tracking::trends_csv(expected));

  obs::JsonValue coverage = ok(service, req("coverage", "s"));
  EXPECT_DOUBLE_EQ(coverage.at("effective_coverage").number,
                   expected.effective_coverage());
}

TEST(ServiceTest, ReadsAutoRetrackAfterAppend) {
  TrackingService service(test_config());
  ok(service, req("open_study", "s"));
  append_inline(service, "s", "A", 1);
  append_inline(service, "s", "B", 2);
  obs::JsonValue first = ok(service, req("regions", "s"));
  EXPECT_EQ(static_cast<int>(first.at("experiments").number), 2);

  append_inline(service, "s", "C", 3);
  // No explicit retrack: the read notices staleness and retracks itself.
  obs::JsonValue second = ok(service, req("regions", "s"));
  EXPECT_EQ(static_cast<int>(second.at("experiments").number), 3);

  obs::JsonValue stats = ok(service, req("stats", "s"));
  EXPECT_EQ(static_cast<int>(stats.at("retracks").number), 2);
}

TEST(ServiceTest, TrendsRejectsUnknownMetric) {
  TrackingService service(test_config());
  ok(service, req("open_study", "s"));
  append_inline(service, "s", "A", 1);
  append_inline(service, "s", "B", 2);
  Request r = req("trends", "s");
  set_param(r, "metric", "bogus");
  fail(service, r, ErrorCode::BadRequest);
}

TEST(ServiceTest, StrictAppendFailureLeavesStudyUntouched) {
  TrackingService service(test_config());
  ok(service, req("open_study", "s"));
  Request r = req("append_experiment", "s");
  set_param(r, "trace", std::string("this is not a trace\n"));
  fail(service, r, ErrorCode::ParseFailure);
  Request missing = req("append_experiment", "s");
  set_param(missing, "path", std::string("/nonexistent/file.ptt"));
  Response io = service.handle(missing);
  EXPECT_FALSE(io.ok);
  obs::JsonValue stats = ok(service, req("stats", "s"));
  EXPECT_EQ(static_cast<int>(stats.at("appends").number), 0);
}

TEST(ServiceTest, LenientAppendFailureBecomesTrackedGap) {
  ServiceConfig config = test_config();
  config.session.resilience.lenient = true;
  config.session.resilience.max_gap_fraction = 0.8;
  TrackingService service(config);
  ok(service, req("open_study", "s"));
  append_inline(service, "s", "A", 1);
  append_inline(service, "s", "B", 2);

  Request r = req("append_experiment", "s");
  set_param(r, "trace", std::string("this is not a trace\n"));
  set_param(r, "label", std::string("broken-run"));
  obs::JsonValue result = ok(service, r);
  EXPECT_TRUE(result.at("degraded").boolean);
  EXPECT_FALSE(result.at("gap_reason").string.empty());
  EXPECT_EQ(static_cast<int>(result.at("gaps").number), 1);

  obs::JsonValue regions = ok(service, req("regions", "s"));
  EXPECT_EQ(static_cast<int>(regions.at("gaps").number), 1);
  EXPECT_EQ(static_cast<int>(regions.at("experiments").number), 3);
}

TEST(ServiceTest, ExplicitGapsCountTowardTheSequence) {
  // Tracking across a gap needs lenient resilience, as in the CLI.
  ServiceConfig config = test_config();
  config.session.resilience.lenient = true;
  config.session.resilience.max_gap_fraction = 0.8;
  TrackingService service(config);
  ok(service, req("open_study", "s"));
  append_inline(service, "s", "A", 1);
  Request gap = req("append_gap", "s");
  set_param(gap, "label", std::string("lost-run"));
  set_param(gap, "reason", std::string("cluster maintenance"));
  obs::JsonValue result = ok(service, gap);
  EXPECT_EQ(static_cast<int>(result.at("slot").number), 1);
  append_inline(service, "s", "C", 3);
  obs::JsonValue regions = ok(service, req("regions", "s"));
  EXPECT_EQ(static_cast<int>(regions.at("gaps").number), 1);
}

TEST(ServiceTest, BothOrNeitherOfPathAndTraceIsBadRequest) {
  TrackingService service(test_config());
  ok(service, req("open_study", "s"));
  fail(service, req("append_experiment", "s"), ErrorCode::BadRequest);
  Request both = req("append_experiment", "s");
  set_param(both, "path", std::string("a.ptt"));
  set_param(both, "trace", std::string("x"));
  fail(service, both, ErrorCode::BadRequest);
}

TEST(ServiceTest, EvictedStudyRebuildsWithIdenticalResults) {
  TrackingService service(test_config());
  ok(service, req("open_study", "s"));
  append_inline(service, "s", "A", 1);
  append_inline(service, "s", "B", 2);
  obs::JsonValue before = ok(service, req("regions", "s"));

  obs::JsonValue evicted = ok(service, req("evict", "s"));
  EXPECT_TRUE(evicted.at("evicted").boolean);
  obs::JsonValue stats = ok(service, req("stats", "s"));
  EXPECT_FALSE(stats.at("resident").boolean);
  EXPECT_FALSE(stats.at("tracked").boolean);

  // A repeat regions read is served from the render cache — identical
  // bytes, no session rebuild.
  obs::JsonValue after = ok(service, req("regions", "s"));
  EXPECT_EQ(after.at("text").string, before.at("text").string);
  obs::JsonValue stats2 = ok(service, req("stats", "s"));
  EXPECT_FALSE(stats2.at("resident").boolean);
  EXPECT_EQ(static_cast<int>(stats2.at("rebuilds").number), 0);

  // An uncached read replays the append log into a fresh session; the
  // rebuilt state answers byte-identically to the pre-eviction one.
  ok(service, req("coverage", "s"));
  obs::JsonValue stats3 = ok(service, req("stats", "s"));
  EXPECT_TRUE(stats3.at("resident").boolean);
  EXPECT_EQ(static_cast<int>(stats3.at("rebuilds").number), 1);
  EXPECT_EQ(static_cast<int>(stats3.at("evictions").number), 1);
  obs::JsonValue again = ok(service, req("regions", "s"));
  EXPECT_EQ(again.at("text").string, before.at("text").string);
}

TEST(ServiceTest, ReopenedStudyWarmsFromFrameCache) {
  fs::path cache = fs::path(::testing::TempDir()) / "pt_serve_cache";
  fs::remove_all(cache);

  ServiceConfig config = test_config();
  config.session.cache.directory = cache.string();
  TrackingService service(config);
  ok(service, req("open_study", "s"));
  append_inline(service, "s", "A", 1);
  append_inline(service, "s", "B", 2);
  ok(service, req("retrack", "s"));
  obs::JsonValue cold = ok(service, req("stats", "s"));
  EXPECT_EQ(static_cast<int>(cold.at("session").at("cache_stores").number), 2);
  EXPECT_EQ(
      static_cast<int>(cold.at("session").at("frames_from_cache").number), 0);

  ok(service, req("evict", "s"));
  ok(service, req("regions", "s"));  // rebuild

  obs::JsonValue warm = ok(service, req("stats", "s"));
  // The rebuilt session clustered nothing: both frames came off disk.
  EXPECT_EQ(
      static_cast<int>(warm.at("session").at("frames_from_cache").number), 2);
  EXPECT_EQ(static_cast<int>(warm.at("session").at("cache_hits").number), 2);
  fs::remove_all(cache);
}

TEST(ServiceTest, SweepEvictsIdleStudiesByTtl) {
  ServiceConfig config = test_config();
  config.idle_ttl_ns = 1;  // everything is instantly idle
  TrackingService service(config);
  ok(service, req("open_study", "s"));
  append_inline(service, "s", "A", 1);
  append_inline(service, "s", "B", 2);
  ok(service, req("retrack", "s"));

  obs::JsonValue swept = ok(service, req("sweep"));
  EXPECT_EQ(static_cast<int>(swept.at("evicted").number), 1);
  obs::JsonValue stats = ok(service, req("stats", "s"));
  EXPECT_FALSE(stats.at("resident").boolean);
}

TEST(ServiceTest, SweepEnforcesResidentCapLruFirst) {
  ServiceConfig config = test_config();
  config.max_resident = 1;
  TrackingService service(config);
  for (const char* name : {"old", "new"}) {
    ok(service, req("open_study", name));
    append_inline(service, name, "A", 1);
    append_inline(service, name, "B", 2);
    ok(service, req("retrack", name));
  }
  // "new" was used last; the cap evicts "old" only.
  obs::JsonValue swept = ok(service, req("sweep"));
  EXPECT_EQ(static_cast<int>(swept.at("evicted").number), 1);
  EXPECT_FALSE(ok(service, req("stats", "old")).at("resident").boolean);
  EXPECT_TRUE(ok(service, req("stats", "new")).at("resident").boolean);
}

TEST(ServiceTest, ServiceStatsAggregateAndReportQueue) {
  TrackingService service(test_config());
  service.set_queue_stats(
      [] { return QueueStats{8, 2, 100, 3}; });
  ok(service, req("open_study", "a"));
  ok(service, req("open_study", "b"));
  append_inline(service, "a", "A", 1);

  obs::JsonValue stats = ok(service, req("stats"));
  EXPECT_EQ(static_cast<int>(stats.at("studies").number), 2);
  EXPECT_EQ(static_cast<int>(stats.at("appends").number), 1);
  EXPECT_FALSE(stats.at("draining").boolean);
  EXPECT_EQ(static_cast<int>(stats.at("queue").at("capacity").number), 8);
  EXPECT_EQ(static_cast<int>(stats.at("queue").at("rejected").number), 3);
}

TEST(ServiceTest, ShutdownSetsTheDrainFlag) {
  TrackingService service(test_config());
  EXPECT_FALSE(service.shutdown_requested());
  obs::JsonValue result = ok(service, req("shutdown"));
  EXPECT_TRUE(result.at("draining").boolean);
  EXPECT_TRUE(service.shutdown_requested());
}

TEST(ServiceTest, HandleLineAnswersGarbageWithBadRequest) {
  TrackingService service(test_config());
  Response response = service.handle_line("{{{");
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.code, ErrorCode::BadRequest);
}

TEST(ServiceTest, PathAppendsLoadFromDisk) {
  fs::path dir = fs::path(::testing::TempDir()) / "pt_serve_paths";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string a = (dir / "a.ptt").string();
  const std::string b = (dir / "b.ptt").string();
  trace::save_trace(a, *experiment("A", 1));
  trace::save_trace(b, *experiment("B", 2));

  TrackingService service(test_config());
  ok(service, req("open_study", "s"));
  for (const std::string& path : {a, b}) {
    Request r = req("append_experiment", "s");
    set_param(r, "path", path);
    ok(service, r);
  }
  obs::JsonValue regions = ok(service, req("regions", "s"));
  EXPECT_EQ(static_cast<int>(regions.at("experiments").number), 2);

  // Eviction + rebuild re-reads the same paths.
  ok(service, req("evict", "s"));
  obs::JsonValue after = ok(service, req("regions", "s"));
  EXPECT_EQ(after.at("text").string, regions.at("text").string);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace perftrack::serve
