// Crash-safe durability, end to end: a TrackingService (or a real
// perftrackd process) restarted on the same --state-dir must answer
// regions/trends byte-identically to one that never went down.
//
// The headline case, KillNineMidAppendRecoversIdentically, spawns the real
// daemon binary (PT_PERFTRACKD_BIN), fires an append at it and SIGKILLs it
// with the request in flight, then restarts on the same state dir and
// retries with the same idempotency seq — the recovered study must match a
// never-crashed reference byte for byte. CI runs it repeatedly (the kill
// lands at a different byte offset every time) and once under tsan.

#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "serve/client.hpp"
#include "serve/service.hpp"
#include "sim/studies.hpp"
#include "testing/test_traces.hpp"
#include "trace/trace_io.hpp"

namespace perftrack::serve {
namespace {

namespace fs = std::filesystem;

using perftrack::testing::MiniPhase;
using perftrack::testing::MiniTraceSpec;
using perftrack::testing::make_mini_trace;

std::shared_ptr<const trace::Trace> experiment(const std::string& label,
                                               std::uint64_t seed) {
  MiniTraceSpec spec;
  spec.label = label;
  spec.seed = seed;
  spec.noise = 0.02;
  spec.phases = {MiniPhase{8e6, 1.0, {"p1", "x.c", 1}},
                 MiniPhase{1e6, 2.0, {"p2", "x.c", 2}}};
  return make_mini_trace(spec);
}

std::string trace_text(const std::string& label, std::uint64_t seed) {
  std::ostringstream out;
  trace::write_trace(out, *experiment(label, seed));
  return out.str();
}

Request req(const std::string& method, const std::string& study = "") {
  Request r;
  r.method = method;
  r.study = study;
  return r;
}

void set_param(Request& r, const std::string& name, const std::string& v) {
  r.params.type = obs::JsonValue::Type::Object;
  obs::JsonValue value;
  value.type = obs::JsonValue::Type::String;
  value.string = v;
  r.params.object[name] = std::move(value);
}

void set_param(Request& r, const std::string& name, double v) {
  r.params.type = obs::JsonValue::Type::Object;
  obs::JsonValue value;
  value.type = obs::JsonValue::Type::Number;
  value.number = v;
  r.params.object[name] = std::move(value);
}

obs::JsonValue ok(TrackingService& service, const Request& request) {
  Response response = service.handle(request);
  EXPECT_TRUE(response.ok) << request.method << ": " << response.message;
  return obs::parse_json(response.result_json);
}

Response fail(TrackingService& service, const Request& request,
              ErrorCode code) {
  Response response = service.handle(request);
  EXPECT_FALSE(response.ok) << request.method << " unexpectedly succeeded";
  EXPECT_EQ(response.code, code) << response.message;
  return response;
}

Request append_req(const std::string& study, const std::string& label,
                   std::uint64_t seed, double seq = 0.0) {
  Request r = req("append_experiment", study);
  set_param(r, "trace", trace_text(label, seed));
  set_param(r, "label", label);
  if (seq > 0.0) set_param(r, "seq", seq);
  return r;
}

class RecoveryTest : public ::testing::Test {
protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("pt_recovery_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    if (!HasFailure()) fs::remove_all(dir_);
    // On failure the pt_recovery_* dir (journals, quarantined files) is
    // left behind for the CI artifact upload.
  }

  ServiceConfig durable_config() const {
    ServiceConfig config;
    config.session.clustering.dbscan.eps = 0.05;
    config.session.clustering.dbscan.min_pts = 3;
    // Lenient so studies with gap entries still answer reads — and so the
    // journaled resilience flag itself round-trips through recovery.
    config.session.resilience.lenient = true;
    config.journal.directory = (dir_ / "state").string();
    config.journal.fsync = FsyncMode::Always;
    return config;
  }

  fs::path dir_;
};

TEST_F(RecoveryTest, RestartAnswersRegionsAndTrendsIdentically) {
  std::string regions_before;
  std::string trends_before;
  {
    TrackingService service(durable_config());
    ok(service, req("open_study", "wrf"));
    ok(service, append_req("wrf", "run1", 101));
    ok(service, append_req("wrf", "run2", 102));
    Request gap = req("append_gap", "wrf");
    set_param(gap, "label", "crash");
    set_param(gap, "reason", "node died");
    ok(service, gap);
    ok(service, append_req("wrf", "run3", 103));
    Response regions = service.handle(req("regions", "wrf"));
    ASSERT_TRUE(regions.ok) << regions.message;
    regions_before = regions.result_json;
    Response trends = service.handle(req("trends", "wrf"));
    ASSERT_TRUE(trends.ok) << trends.message;
    trends_before = trends.result_json;
  }  // destructor = clean shutdown; journals are already synced (Always)

  TrackingService restarted(durable_config());
  obs::JsonValue listing = ok(restarted, req("list_studies"));
  ASSERT_EQ(listing.at("studies").array.size(), 1u);

  Response regions = restarted.handle(req("regions", "wrf"));
  ASSERT_TRUE(regions.ok) << regions.message;
  EXPECT_EQ(regions.result_json, regions_before);
  Response trends = restarted.handle(req("trends", "wrf"));
  ASSERT_TRUE(trends.ok) << trends.message;
  EXPECT_EQ(trends.result_json, trends_before);

  obs::JsonValue stats = ok(restarted, req("stats"));
  const obs::JsonValue& journal = stats.at("journal");
  EXPECT_TRUE(journal.at("enabled").boolean);
  EXPECT_DOUBLE_EQ(journal.at("recovered").number, 1.0);
  EXPECT_DOUBLE_EQ(journal.at("quarantined").number, 0.0);
}

TEST_F(RecoveryTest, TruncatedJournalRecoversThePrefix) {
  {
    TrackingService service(durable_config());
    ok(service, req("open_study", "wrf"));
    ok(service, append_req("wrf", "run1", 101));
    ok(service, append_req("wrf", "run2", 102));
    ok(service, append_req("wrf", "run3", 103));
  }
  // Tear the tail the way a crash mid-write does.
  const fs::path journal =
      dir_ / "state" / journal_file_name("wrf");
  ASSERT_TRUE(fs::exists(journal));
  fs::resize_file(journal, fs::file_size(journal) - 5);

  TrackingService restarted(durable_config());
  std::string recovered =
      restarted.handle(req("regions", "wrf")).result_json;

  // Reference: the same study that only ever saw the surviving prefix.
  ServiceConfig reference_config = durable_config();
  reference_config.journal.directory = (dir_ / "ref_state").string();
  TrackingService reference(reference_config);
  ok(reference, req("open_study", "wrf"));
  ok(reference, append_req("wrf", "run1", 101));
  ok(reference, append_req("wrf", "run2", 102));
  EXPECT_EQ(recovered, reference.handle(req("regions", "wrf")).result_json);

  obs::JsonValue stats = ok(restarted, req("stats"));
  EXPECT_DOUBLE_EQ(stats.at("journal").at("truncated").number, 1.0);
}

TEST_F(RecoveryTest, RetriedSeqAppliesExactlyOnce) {
  TrackingService service(durable_config());
  ok(service, req("open_study", "wrf"));

  obs::JsonValue first = ok(service, append_req("wrf", "run1", 101, 1.0));
  EXPECT_FALSE(first.has("deduped"));

  // The retry of an applied seq is acknowledged without re-appending.
  obs::JsonValue retry = ok(service, append_req("wrf", "run1", 101, 1.0));
  EXPECT_TRUE(retry.at("deduped").boolean);
  EXPECT_DOUBLE_EQ(retry.at("experiments").number, 1.0);

  obs::JsonValue second = ok(service, append_req("wrf", "run2", 102, 2.0));
  EXPECT_DOUBLE_EQ(second.at("experiments").number, 2.0);

  obs::JsonValue stats = ok(service, req("stats"));
  EXPECT_DOUBLE_EQ(stats.at("journal").at("deduped").number, 1.0);

  Request bad = append_req("wrf", "run3", 103);
  set_param(bad, "seq", 0.5);
  fail(service, bad, ErrorCode::BadRequest);
}

TEST_F(RecoveryTest, ConcurrentRetriesOfTheSameSeqApplyOnce) {
  TrackingService service(durable_config());
  ok(service, req("open_study", "wrf"));

  // Four impatient clients all retry the same 8 appends — the tsan leg of
  // CI watches the seq-dedupe path for races.
  constexpr int kAppends = 8;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&service] {
      for (int i = 1; i <= kAppends; ++i) {
        Response response = service.handle(append_req(
            "wrf", "run" + std::to_string(i),
            static_cast<std::uint64_t>(100 + i), static_cast<double>(i)));
        EXPECT_TRUE(response.ok) << response.message;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  obs::JsonValue stats = ok(service, req("stats", "wrf"));
  EXPECT_DOUBLE_EQ(stats.at("appends").number,
                   static_cast<double>(kAppends));
  EXPECT_DOUBLE_EQ(stats.at("journal").at("last_seq").number,
                   static_cast<double>(kAppends));
}

TEST_F(RecoveryTest, VanishedTracePathFailsTypedAndKeepsOtherStudies) {
  // Satellite regression: replaying an evicted study whose on-disk trace
  // vanished must fail with `replay-failed`, keep the study evicted, and
  // leave every other study untouched.
  // Reads need at least two experiments, so give each study two; the
  // first trace file of "fragile" is the one that vanishes.
  const fs::path trace_path = dir_ / "exp1.ptt";
  const fs::path trace_path2 = dir_ / "exp2.ptt";
  {
    std::ofstream out(trace_path);
    trace::write_trace(out, *experiment("exp1", 201));
    std::ofstream out2(trace_path2);
    trace::write_trace(out2, *experiment("exp2", 202));
  }

  ServiceConfig config;
  config.session.clustering.dbscan.eps = 0.05;
  config.session.clustering.dbscan.min_pts = 3;
  TrackingService service(config);

  ok(service, req("open_study", "fragile"));
  for (const fs::path& path : {trace_path, trace_path2}) {
    Request append = req("append_experiment", "fragile");
    set_param(append, "path", path.string());
    ok(service, append);
  }

  ok(service, req("open_study", "healthy"));
  ok(service, append_req("healthy", "run1", 301));
  ok(service, append_req("healthy", "run2", 302));

  ok(service, req("evict", "fragile"));
  fs::remove(trace_path);

  Response replay = service.handle(req("regions", "fragile"));
  EXPECT_FALSE(replay.ok);
  EXPECT_EQ(replay.code, ErrorCode::ReplayFailed) << replay.message;
  EXPECT_NE(replay.message.find("exp1.ptt"), std::string::npos)
      << replay.message;

  // Still registered (the log survives), still failing the same way.
  obs::JsonValue listing = ok(service, req("list_studies"));
  EXPECT_EQ(listing.at("studies").array.size(), 2u);
  fail(service, req("regions", "fragile"), ErrorCode::ReplayFailed);

  // The healthy study is oblivious.
  EXPECT_TRUE(service.handle(req("regions", "healthy")).ok);
}

TEST_F(RecoveryTest, ClientDeadlineBoundsAConnectToNobody) {
  RetryPolicy retry;
  retry.attempts = 2;
  retry.deadline_ms = 50;
  retry.backoff_ms = 1;
  retry.backoff_max_ms = 2;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(
      NdjsonClient((dir_ / "no_daemon.sock").string(), retry), Error);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            5000);
}

// ---------------------------------------------------------------------------
// The subprocess crash harness: a real perftrackd, really SIGKILLed.

pid_t spawn_daemon(const std::string& socket_path,
                   const std::string& state_dir) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execl(PT_PERFTRACKD_BIN, PT_PERFTRACKD_BIN, "--socket",
            socket_path.c_str(), "--state-dir", state_dir.c_str(), "--fsync",
            "always", "--no-cache", static_cast<char*>(nullptr));
    ::_exit(127);  // exec failed
  }
  return pid;
}

RetryPolicy daemon_retry() {
  RetryPolicy retry;
  retry.attempts = 200;  // cover a slow daemon boot under sanitizers
  retry.deadline_ms = 250;
  retry.backoff_ms = 5;
  retry.backoff_max_ms = 50;
  return retry;
}

std::string params_json(const std::string& trace, const std::string& label,
                        std::uint64_t seq) {
  obs::JsonWriter json;
  json.begin_object();
  json.key("trace").value(trace);
  json.key("label").value(label);
  json.key("seq").value(seq);
  json.end_object();
  return json.str();
}

/// Strip the protocol envelope `{"ok":true,"result":...}` off a raw
/// response line, for the byte-identity comparison.
std::string raw_result(NdjsonClient& client, const std::string& method,
                       const std::string& study) {
  obs::JsonWriter json;
  json.begin_object();
  json.key("method").value(method);
  json.key("study").value(study);
  json.end_object();
  const std::string line = client.roundtrip(json.str());
  const std::string prefix = "{\"ok\":true,\"result\":";
  EXPECT_EQ(line.rfind(prefix, 0), 0u) << line;
  if (line.rfind(prefix, 0) != 0) return line;
  return line.substr(prefix.size(), line.size() - prefix.size() - 1);
}

/// Fire one request line at the socket and do NOT wait for the answer —
/// the caller SIGKILLs the daemon with this request in flight.
void fire_and_forget(const std::string& socket_path,
                     const std::string& line) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  ASSERT_LT(socket_path.size(), sizeof(address.sun_path));
  std::memcpy(address.sun_path, socket_path.c_str(),
              socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&address),
                      sizeof(address)),
            0)
      << std::strerror(errno);
  const std::string payload = line + "\n";
  (void)::send(fd, payload.data(), payload.size(), MSG_NOSIGNAL);
  ::close(fd);
}

TEST_F(RecoveryTest, KillNineMidAppendRecoversIdentically) {
  const std::string socket_path = (dir_ / "d.sock").string();
  const std::string state_dir = (dir_ / "state").string();
  const std::vector<std::uint64_t> seeds = {401, 402, 403, 404};

  // --- round 1: daemon A takes two appends, dies with the third in flight.
  const pid_t a = spawn_daemon(socket_path, state_dir);
  ASSERT_GT(a, 0);
  {
    NdjsonClient client(socket_path, daemon_retry());
    ASSERT_TRUE(client.call("open_study", "wrf").ok);
    for (std::uint64_t seq = 1; seq <= 2; ++seq) {
      const std::string label = "run" + std::to_string(seq);
      ClientResponse ack = client.call(
          "append_experiment", "wrf",
          params_json(trace_text(label, seeds[seq - 1]), label, seq));
      ASSERT_TRUE(ack.ok) << ack.error_message;
    }
    obs::JsonWriter json;
    json.begin_object();
    json.key("method").value("append_experiment");
    json.key("study").value("wrf");
    json.end_object();
    std::string line = json.str();
    line.insert(line.size() - 1,
                ",\"params\":" +
                    params_json(trace_text("run3", seeds[2]), "run3", 3));
    fire_and_forget(socket_path, line);
  }
  ASSERT_EQ(::kill(a, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(a, &status, 0), a);
  ASSERT_TRUE(WIFSIGNALED(status));

  // --- round 2: daemon B on the same state dir; retry seq 3 (applied or
  // deduped — either way exactly once), then finish the sequence.
  const pid_t b = spawn_daemon(socket_path, state_dir);
  ASSERT_GT(b, 0);
  std::string regions_recovered;
  std::string trends_recovered;
  {
    NdjsonClient client(socket_path, daemon_retry());
    for (std::uint64_t seq = 3; seq <= 4; ++seq) {
      const std::string label = "run" + std::to_string(seq);
      ClientResponse ack = client.call(
          "append_experiment", "wrf",
          params_json(trace_text(label, seeds[seq - 1]), label, seq));
      ASSERT_TRUE(ack.ok) << ack.error_message;
    }
    regions_recovered = raw_result(client, "regions", "wrf");
    trends_recovered = raw_result(client, "trends", "wrf");
    ClientResponse bye = client.call("shutdown");
    EXPECT_TRUE(bye.ok) << bye.error_message;
  }
  ASSERT_EQ(::waitpid(b, &status, 0), b);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);

  // --- reference: the same study on a daemon-configured service that
  // never crashed. perftrackd defaults mirrored from service_config().
  ServiceConfig reference_config;
  reference_config.session.clustering = sim::default_clustering();
  reference_config.session.clustering.dbscan.eps = 0.025;
  reference_config.session.clustering.dbscan.min_pts = 5;
  reference_config.session.clustering.min_cluster_time_fraction = 0.005;
  TrackingService reference(reference_config);
  ok(reference, req("open_study", "wrf"));
  for (std::uint64_t seq = 1; seq <= 4; ++seq)
    ok(reference, append_req("wrf", "run" + std::to_string(seq),
                             seeds[seq - 1]));

  EXPECT_EQ(regions_recovered,
            reference.handle(req("regions", "wrf")).result_json)
      << "recovered daemon diverged from the never-crashed reference";
  EXPECT_EQ(trends_recovered,
            reference.handle(req("trends", "wrf")).result_json);
}

}  // namespace
}  // namespace perftrack::serve
