// Server engine: bounded admission, ordered responses, the stream
// transport's drain semantics, and the unix-socket transport end to end.

#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "serve/client.hpp"
#include "serve/service.hpp"
#include "testing/test_traces.hpp"
#include "trace/trace_io.hpp"

namespace perftrack::serve {
namespace {

namespace fs = std::filesystem;

using perftrack::testing::MiniPhase;
using perftrack::testing::MiniTraceSpec;
using perftrack::testing::make_mini_trace;

std::string trace_text(const std::string& label, std::uint64_t seed) {
  MiniTraceSpec spec;
  spec.label = label;
  spec.seed = seed;
  spec.noise = 0.02;
  spec.phases = {MiniPhase{8e6, 1.0, {"p1", "x.c", 1}},
                 MiniPhase{1e6, 2.0, {"p2", "x.c", 2}}};
  std::ostringstream out;
  trace::write_trace(out, *make_mini_trace(spec));
  return out.str();
}

std::string append_line(int id, const std::string& study,
                        const std::string& label, std::uint64_t seed) {
  obs::JsonWriter json;
  json.begin_object();
  json.key("id").value(static_cast<std::uint64_t>(id));
  json.key("method").value("append_experiment");
  json.key("study").value(study);
  json.key("params").begin_object();
  json.key("trace").value(trace_text(label, seed));
  json.key("label").value(label);
  json.end_object();
  json.end_object();
  return json.str();
}

std::vector<obs::JsonValue> parse_lines(const std::string& text) {
  std::vector<obs::JsonValue> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) out.push_back(obs::parse_json(line));
  return out;
}

TEST(OrderedWriterTest, FlushesInAllocationOrder) {
  std::vector<std::string> sunk;
  OrderedWriter writer([&sunk](const std::string& line) {
    sunk.push_back(line);
  });
  std::uint64_t a = writer.allocate();
  std::uint64_t b = writer.allocate();
  std::uint64_t c = writer.allocate();
  writer.write(c, "C");
  EXPECT_TRUE(sunk.empty()) << "C must wait for A and B";
  writer.write(a, "A");
  ASSERT_EQ(sunk.size(), 1u);
  EXPECT_EQ(sunk[0], "A");
  writer.write(b, "B");
  ASSERT_EQ(sunk.size(), 3u);
  EXPECT_EQ(sunk[1], "B");
  EXPECT_EQ(sunk[2], "C");
}

TEST(BoundedExecutorTest, RejectsBeyondCapacityAndCounts) {
  BoundedExecutor executor(2, 2);
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  auto blocker = [&] {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return release; });
  };
  ASSERT_TRUE(executor.try_submit(blocker));
  ASSERT_TRUE(executor.try_submit(blocker));
  // Queue full: rejection happens without blocking.
  EXPECT_FALSE(executor.try_submit([] {}));
  QueueStats stats = executor.stats();
  EXPECT_EQ(stats.capacity, 2u);
  EXPECT_EQ(stats.in_flight, 2u);
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.rejected, 1u);
  {
    std::lock_guard<std::mutex> lock(mutex);
    release = true;
  }
  cv.notify_all();
  executor.drain();
  EXPECT_EQ(executor.stats().in_flight, 0u);
  // Capacity is free again.
  EXPECT_TRUE(executor.try_submit([] {}));
  executor.drain();
}

TEST(BoundedExecutorTest, TaskExceptionsDoNotPoisonAccounting) {
  BoundedExecutor executor(1, 4);
  for (int i = 0; i < 4; ++i)
    ASSERT_TRUE(executor.try_submit([] { throw std::runtime_error("boom"); }));
  executor.drain();
  EXPECT_EQ(executor.stats().in_flight, 0u);
  EXPECT_EQ(executor.stats().admitted, 4u);
}

TEST(ServeStreamTest, AnswersEveryLineInOrderAndExitsZeroOnEof) {
  TrackingService service;
  std::string input;
  input += R"({"id":1,"method":"ping"})" "\n";
  input += "\n";  // blank lines are skipped, not answered
  input += R"({"id":2,"method":"list_studies"})" "\n";
  input += "not json\n";
  input += R"({"id":4,"method":"ping"})" "\n";
  std::istringstream in(input);
  std::ostringstream out;
  ServerOptions options;
  options.threads = 4;
  EXPECT_EQ(serve_stream(service, in, out, options), 0);

  std::vector<obs::JsonValue> responses = parse_lines(out.str());
  ASSERT_EQ(responses.size(), 4u);
  // Responses come back in request order even with 4 worker threads.
  EXPECT_DOUBLE_EQ(responses[0].at("id").number, 1.0);
  EXPECT_TRUE(responses[0].at("ok").boolean);
  EXPECT_DOUBLE_EQ(responses[1].at("id").number, 2.0);
  EXPECT_FALSE(responses[2].at("ok").boolean);
  EXPECT_EQ(responses[2].at("error").at("code").string, "bad-request");
  EXPECT_DOUBLE_EQ(responses[3].at("id").number, 4.0);
}

TEST(ServeStreamTest, FullSessionAppendTrackRead) {
  TrackingService service;
  std::string input;
  input += R"({"id":1,"method":"open_study","study":"s"})" "\n";
  input += append_line(2, "s", "A", 1) + "\n";
  input += append_line(3, "s", "B", 2) + "\n";
  input += R"({"id":4,"method":"retrack","study":"s"})" "\n";
  input += R"({"id":5,"method":"regions","study":"s"})" "\n";
  std::istringstream in(input);
  std::ostringstream out;
  EXPECT_EQ(serve_stream(service, in, out, ServerOptions{}), 0);

  std::vector<obs::JsonValue> responses = parse_lines(out.str());
  ASSERT_EQ(responses.size(), 5u);
  for (const obs::JsonValue& r : responses)
    EXPECT_TRUE(r.at("ok").boolean);
  EXPECT_EQ(static_cast<int>(
                responses[3].at("result").at("experiments").number), 2);
  EXPECT_FALSE(responses[4].at("result").at("text").string.empty());
}

TEST(ServeStreamTest, ShutdownStopsReadingAndDrains) {
  TrackingService service;
  std::string input;
  input += R"({"id":1,"method":"ping"})" "\n";
  input += R"({"id":2,"method":"shutdown"})" "\n";
  input += R"({"id":3,"method":"ping"})" "\n";  // never read
  std::istringstream in(input);
  std::ostringstream out;
  EXPECT_EQ(serve_stream(service, in, out, ServerOptions{}), 0);

  std::vector<obs::JsonValue> responses = parse_lines(out.str());
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_TRUE(responses[1].at("result").at("draining").boolean);
  EXPECT_TRUE(service.shutdown_requested());
  // The line after shutdown was left unread in the stream.
  std::string leftover;
  std::getline(in, leftover);
  EXPECT_NE(leftover.find("\"id\":3"), std::string::npos);
}

TEST(ServeStreamTest, OverloadRejectionIsTypedAndOrdered) {
  // One inline worker (threads=1 -> inline execution happens on submit, so
  // force real concurrency pressure with a capacity-1 queue and a slow
  // handler is racy; instead drive capacity 1 with threads=2 and many
  // requests — at least none may be lost and every response is one of
  // ok/overloaded).
  TrackingService service;
  std::string input;
  const int kRequests = 64;
  for (int i = 0; i < kRequests; ++i)
    input += R"({"id":)" + std::to_string(i) + R"(,"method":"ping"})" "\n";
  std::istringstream in(input);
  std::ostringstream out;
  ServerOptions options;
  options.threads = 2;
  options.queue_capacity = 1;
  EXPECT_EQ(serve_stream(service, in, out, options), 0);

  std::vector<obs::JsonValue> responses = parse_lines(out.str());
  ASSERT_EQ(responses.size(), static_cast<std::size_t>(kRequests));
  for (int i = 0; i < kRequests; ++i) {
    const obs::JsonValue& r = responses[static_cast<std::size_t>(i)];
    EXPECT_DOUBLE_EQ(r.at("id").number, static_cast<double>(i))
        << "responses must stay in request order";
    if (!r.at("ok").boolean) {
      EXPECT_EQ(r.at("error").at("code").string, "overloaded");
    }
  }
}

TEST(ServeStreamTest, RequestsAfterShutdownOnOtherConnectionsAreRefused) {
  TrackingService service;
  {
    std::istringstream in(R"({"id":1,"method":"shutdown"})" "\n");
    std::ostringstream out;
    serve_stream(service, in, out, ServerOptions{});
  }
  // A second stream against the same (draining) service refuses work.
  std::istringstream in(R"({"id":1,"method":"ping"})" "\n");
  std::ostringstream out;
  serve_stream(service, in, out, ServerOptions{});
  std::vector<obs::JsonValue> responses = parse_lines(out.str());
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_FALSE(responses[0].at("ok").boolean);
  EXPECT_EQ(responses[0].at("error").at("code").string, "shutting-down");
}

TEST(ServeStreamTest, OverlongLineIsRejectedAndServingContinues) {
  TrackingService service;
  std::string input;
  input += R"({"id":1,"method":"ping"})" "\n";
  input += R"({"id":2,"method":"ping","pad":")" + std::string(600, 'x') +
           "\"}\n";
  input += R"({"id":3,"method":"ping"})" "\n";
  std::istringstream in(input);
  std::ostringstream out;
  ServerOptions options;
  options.max_line_bytes = 256;
  EXPECT_EQ(serve_stream(service, in, out, options), 0);

  std::vector<obs::JsonValue> responses = parse_lines(out.str());
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_TRUE(responses[0].at("ok").boolean);
  EXPECT_FALSE(responses[1].at("ok").boolean);
  EXPECT_EQ(responses[1].at("error").at("code").string, "bad-request");
  EXPECT_NE(responses[1].at("error").at("message").string.find("256"),
            std::string::npos);
  EXPECT_TRUE(responses[2].at("ok").boolean)
      << "the connection keeps serving after an oversized line";
}

// ---------------------------------------------------------------------------
// AF_UNIX transport

/// Minimal blocking NDJSON client for the socket tests.
class UnixClient {
public:
  explicit UnixClient(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un address{};
    address.sun_family = AF_UNIX;
    std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
    // The server may not have bound yet; retry briefly.
    for (int attempt = 0; attempt < 100; ++attempt) {
      if (::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                    sizeof(address)) == 0)
        return;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ADD_FAILURE() << "cannot connect to " << path;
    ::close(fd_);
    fd_ = -1;
  }

  ~UnixClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send(const std::string& line) {
    std::string framed = line + "\n";
    ASSERT_EQ(::write(fd_, framed.data(), framed.size()),
              static_cast<ssize_t>(framed.size()));
  }

  obs::JsonValue recv() {
    std::string line;
    char c;
    while (true) {
      ssize_t n = ::read(fd_, &c, 1);
      if (n <= 0) break;
      if (c == '\n') break;
      line.push_back(c);
    }
    return obs::parse_json(line);
  }

private:
  int fd_ = -1;
};

TEST(ServeUnixSocketTest, ServesConcurrentConnectionsAndDrainsOnShutdown) {
  const std::string path =
      (fs::path(::testing::TempDir()) / "pt_serve_test.sock").string();
  TrackingService service;
  ServerOptions options;
  options.threads = 4;
  std::thread server([&] {
    EXPECT_EQ(serve_unix_socket(service, path, options), 0);
  });

  {
    UnixClient alice(path);
    UnixClient bob(path);
    alice.send(R"({"id":1,"method":"open_study","study":"a"})");
    EXPECT_TRUE(alice.recv().at("ok").boolean);
    bob.send(R"({"id":1,"method":"open_study","study":"b"})");
    EXPECT_TRUE(bob.recv().at("ok").boolean);
    alice.send(append_line(2, "a", "A", 1));
    alice.send(append_line(3, "a", "B", 2));
    EXPECT_TRUE(alice.recv().at("ok").boolean);
    EXPECT_TRUE(alice.recv().at("ok").boolean);
    alice.send(R"({"id":4,"method":"regions","study":"a"})");
    obs::JsonValue regions = alice.recv();
    EXPECT_TRUE(regions.at("ok").boolean);
    EXPECT_FALSE(regions.at("result").at("text").string.empty());

    bob.send(R"({"id":2,"method":"list_studies"})");
    EXPECT_EQ(bob.recv().at("result").at("studies").array.size(), 2u);

    bob.send(R"({"id":3,"method":"shutdown"})");
    EXPECT_TRUE(bob.recv().at("result").at("draining").boolean);
  }
  server.join();
  EXPECT_FALSE(fs::exists(path)) << "socket file removed on clean exit";
}

TEST(ServeUnixSocketTest, SocketPathTooLongFails) {
  TrackingService service;
  std::string path(200, 'x');
  EXPECT_EQ(serve_unix_socket(service, path, ServerOptions{}), 1);
}

TEST(ServeUnixSocketTest, OverlongLineIsRejectedWithoutUnboundedBuffering) {
  const std::string path =
      (fs::path(::testing::TempDir()) / "pt_serve_cap.sock").string();
  TrackingService service;
  ServerOptions options;
  options.max_line_bytes = 512;
  std::thread server([&] {
    EXPECT_EQ(serve_unix_socket(service, path, options), 0);
  });

  {
    UnixClient client(path);
    // An unterminated flood larger than the cap, then the newline: the
    // server answers with a typed error instead of buffering it all.
    client.send(std::string(4096, 'x'));
    obs::JsonValue rejected = client.recv();
    EXPECT_FALSE(rejected.at("ok").boolean);
    EXPECT_EQ(rejected.at("error").at("code").string, "bad-request");
    // The same connection still serves well-formed requests.
    client.send(R"({"id":1,"method":"ping"})");
    EXPECT_TRUE(client.recv().at("ok").boolean);
    client.send(R"({"id":2,"method":"shutdown"})");
    EXPECT_TRUE(client.recv().at("ok").boolean);
  }
  server.join();
}

TEST(ServeUnixSocketTest, StaleSocketFromACrashedDaemonIsReplaced) {
  const std::string path =
      (fs::path(::testing::TempDir()) / "pt_serve_stale.sock").string();
  ::unlink(path.c_str());
  // Fake a crashed daemon: a bound socket file with nobody listening.
  {
    sockaddr_un address{};
    address.sun_family = AF_UNIX;
    std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&address),
                     sizeof(address)),
              0)
        << std::strerror(errno);
    ::close(fd);
  }
  ASSERT_TRUE(fs::exists(path));

  TrackingService service;
  std::thread server([&] {
    EXPECT_EQ(serve_unix_socket(service, path, ServerOptions{}), 0);
  });
  {
    UnixClient client(path);
    client.send(R"({"id":1,"method":"ping"})");
    EXPECT_TRUE(client.recv().at("ok").boolean);
    client.send(R"({"id":2,"method":"shutdown"})");
    EXPECT_TRUE(client.recv().at("ok").boolean);
  }
  server.join();
}

TEST(ServeUnixSocketTest, LiveDaemonsSocketIsNeverStolen) {
  const std::string path =
      (fs::path(::testing::TempDir()) / "pt_serve_live.sock").string();
  ::unlink(path.c_str());
  TrackingService first;
  std::thread server([&] {
    EXPECT_EQ(serve_unix_socket(first, path, ServerOptions{}), 0);
  });
  {
    // Wait until the first daemon actually listens.
    UnixClient probe(path);
    probe.send(R"({"id":1,"method":"ping"})");
    EXPECT_TRUE(probe.recv().at("ok").boolean);

    // A second daemon on the same path must refuse, not unlink.
    TrackingService second;
    EXPECT_EQ(serve_unix_socket(second, path, ServerOptions{}), 1);

    // The first daemon is untouched.
    probe.send(R"({"id":2,"method":"ping"})");
    EXPECT_TRUE(probe.recv().at("ok").boolean);
    probe.send(R"({"id":3,"method":"shutdown"})");
    EXPECT_TRUE(probe.recv().at("ok").boolean);
  }
  server.join();
}

TEST(ServeUnixSocketTest, NonSocketFileIsRefusedNotRemoved) {
  const std::string path =
      (fs::path(::testing::TempDir()) / "pt_serve_notasock").string();
  {
    std::ofstream out(path);
    out << "precious data\n";
  }
  TrackingService service;
  EXPECT_EQ(serve_unix_socket(service, path, ServerOptions{}), 1);
  ASSERT_TRUE(fs::exists(path)) << "a non-socket file must never be unlinked";
  EXPECT_TRUE(fs::is_regular_file(path));
  fs::remove(path);
}

// ---------------------------------------------------------------------------
// TCP transport (--listen): same protocol and framing over a socketpair the
// client reaches with NdjsonClient's tcp://HOST:PORT endpoint form.

TEST(ServeTcpTest, ServesOverEphemeralPortAndDrainsOnShutdown) {
  TrackingService service;
  ServerOptions options;
  options.threads = 2;

  std::mutex mutex;
  std::condition_variable ready;
  std::uint16_t port = 0;
  std::thread server([&] {
    EXPECT_EQ(serve_tcp(service, "127.0.0.1", 0, options,
                        [&](std::uint16_t bound) {
                          std::lock_guard<std::mutex> lock(mutex);
                          port = bound;
                          ready.notify_one();
                        }),
              0);
  });
  {
    std::unique_lock<std::mutex> lock(mutex);
    ready.wait(lock, [&] { return port != 0; });
  }

  NdjsonClient client("tcp://127.0.0.1:" + std::to_string(port));
  ClientResponse pong = client.call("ping");
  ASSERT_TRUE(pong.ok) << pong.error_message;
  EXPECT_TRUE(pong.result.at("pong").boolean);
  EXPECT_EQ(pong.result.at("proto").number,
            static_cast<double>(kProtocolVersion));

  ASSERT_TRUE(client.call("open_study", "a").ok);
  ClientResponse list = client.call("list_studies");
  ASSERT_TRUE(list.ok);
  EXPECT_EQ(list.result.at("studies").array.size(), 1u);

  ClientResponse down = client.call("shutdown");
  ASSERT_TRUE(down.ok);
  EXPECT_TRUE(down.result.at("draining").boolean);
  server.join();
}

TEST(ServeTcpTest, NonNumericHostIsRefused) {
  TrackingService service;
  EXPECT_EQ(serve_tcp(service, "localhost", 0, ServerOptions{}), 1);
}

TEST(ServeTcpTest, ClientRejectsMalformedTcpEndpoints) {
  EXPECT_THROW(NdjsonClient("tcp://127.0.0.1"), Error);       // no port
  EXPECT_THROW(NdjsonClient("tcp://127.0.0.1:0"), Error);     // port range
  EXPECT_THROW(NdjsonClient("tcp://127.0.0.1:70000"), Error);
  EXPECT_THROW(NdjsonClient("tcp://nothost:1234"), Error);    // not numeric
}

}  // namespace
}  // namespace perftrack::serve
