// The shard-by-study front, exercised in-process: TrackingService
// instances as backends, zero sockets. The load-bearing test is
// TwoShardFrontIsByteIdenticalToOneDaemon — sharding must add routing,
// never re-rendering.

#include "serve/shard.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "serve/service.hpp"
#include "testing/test_traces.hpp"
#include "trace/trace_io.hpp"

namespace perftrack::serve {
namespace {

using perftrack::testing::MiniPhase;
using perftrack::testing::MiniTraceSpec;
using perftrack::testing::make_mini_trace;

std::string trace_text(const std::string& label, std::uint64_t seed) {
  MiniTraceSpec spec;
  spec.label = label;
  spec.seed = seed;
  spec.noise = 0.02;
  spec.phases = {MiniPhase{8e6, 1.0, {"p1", "x.c", 1}},
                 MiniPhase{1e6, 2.0, {"p2", "x.c", 2}}};
  std::ostringstream out;
  trace::write_trace(out, *make_mini_trace(spec));
  return out.str();
}

ServiceConfig test_config() {
  ServiceConfig config;
  config.session.clustering.dbscan.eps = 0.05;
  config.session.clustering.dbscan.min_pts = 3;
  return config;
}

ShardFront::Backend backend_of(TrackingService& service) {
  return [&service](const std::string& line) {
    return render_response(service.handle_line(line));
  };
}

/// Drive the front exactly like a transport would: parsed request plus
/// the raw line, rendered response line back.
std::string front_line(ShardFront& front, const std::string& line) {
  Request request;
  try {
    request = parse_request(line);
  } catch (const ServeError& error) {
    return render_response(
        make_error(Request{}, error.code(), error.what()));
  }
  return render_response(front.dispatch(request, line));
}

std::string append_line(const std::string& study, const std::string& label,
                        std::uint64_t seed) {
  obs::JsonWriter json;
  json.begin_object();
  json.key("method").value("append_experiment");
  json.key("study").value(study);
  json.key("params").begin_object();
  json.key("trace").value(trace_text(label, seed));
  json.key("label").value(label);
  json.end_object();
  json.end_object();
  return json.str();
}

/// A front over `shards` fresh services, plus one monolithic service fed
/// the same requests — the byte-identity reference.
struct Fixture {
  explicit Fixture(std::size_t shards) {
    for (std::size_t i = 0; i < shards; ++i)
      workers.push_back(std::make_unique<TrackingService>(test_config()));
    std::vector<ShardFront::Backend> backends;
    for (auto& worker : workers) backends.push_back(backend_of(*worker));
    front = std::make_unique<ShardFront>(std::move(backends));
    single = std::make_unique<TrackingService>(test_config());
  }

  /// Send to both deployments; expect byte-identical responses.
  std::string both(const std::string& line) {
    const std::string sharded = front_line(*front, line);
    const std::string monolith =
        render_response(single->handle_line(line));
    EXPECT_EQ(sharded, monolith) << "for request: " << line;
    return sharded;
  }

  std::vector<std::unique_ptr<TrackingService>> workers;
  std::unique_ptr<ShardFront> front;
  std::unique_ptr<TrackingService> single;
};

TEST(ShardRoutingTest, ShardOfIsStableAndCoversAllShards) {
  std::set<std::size_t> used;
  for (int i = 0; i < 64; ++i) {
    const std::string study = "study-" + std::to_string(i);
    const std::size_t shard = ShardFront::shard_of(study, 4);
    EXPECT_LT(shard, 4u);
    EXPECT_EQ(shard, ShardFront::shard_of(study, 4));  // deterministic
    used.insert(shard);
  }
  EXPECT_EQ(used.size(), 4u) << "64 names should hit all 4 shards";
}

TEST(ShardFrontTest, RequiresABackend) {
  EXPECT_THROW(ShardFront({}), Error);
}

TEST(ShardFrontTest, TwoShardFrontIsByteIdenticalToOneDaemon) {
  Fixture fx(2);
  const std::vector<std::string> studies = {"alpha", "beta", "gamma",
                                            "delta"};
  for (const auto& s : studies) {
    fx.both(R"({"id":"open-)" + s + R"(","method":"open_study","study":")" +
            s + "\"}");
    std::uint64_t seed = 1;
    for (const char* label : {"A", "B", "C"})
      fx.both(append_line(s, label, seed++));
  }
  // Reads with ids: regions, trends (explicit metric), report, coverage —
  // responses including the id echo must match byte for byte.
  for (const auto& s : studies) {
    fx.both(R"({"id":1,"method":"regions","study":")" + s + "\"}");
    fx.both(R"({"id":2,"method":"trends","study":")" + s +
            R"(","params":{"metric":"IPC"}})");
    fx.both(R"({"id":"r-3","method":"report","study":")" + s + "\"}");
    fx.both(R"({"id":4,"method":"coverage","study":")" + s + "\"}");
  }
  // Typed errors are byte-identical too.
  fx.both(R"({"id":9,"method":"regions","study":"never-opened"})");
  fx.both(R"({"id":10,"method":"frobnicate","study":"alpha"})");
  // Study-less unknown method goes to shard 0 and still matches.
  fx.both(R"({"id":11,"method":"frobnicate"})");

  // The studies actually spread: with 4 names over 2 shards at least one
  // study must land on each (pinned: this set does split).
  std::set<std::size_t> used;
  for (const auto& s : studies) used.insert(ShardFront::shard_of(s, 2));
  EXPECT_EQ(used.size(), 2u);
}

TEST(ShardFrontTest, PingMatchesWorkerBytesAndHelloAdvertisesSharding) {
  Fixture fx(2);
  fx.both(R"({"id":1,"method":"ping"})");

  obs::JsonValue hello = obs::parse_json(
      front_line(*fx.front, R"({"method":"hello"})"));
  ASSERT_TRUE(hello.at("ok").boolean);
  const obs::JsonValue& result = hello.at("result");
  EXPECT_EQ(result.at("proto").number,
            static_cast<double>(kProtocolVersion));
  bool sharding = false;
  for (const auto& cap : result.at("capabilities").array)
    if (cap.string == "sharding") sharding = true;
  EXPECT_TRUE(sharding);

  // The front's method list is pinned to the service's: a method added to
  // one and not the other breaks the v2 handshake contract.
  std::vector<std::string> advertised;
  for (const auto& m : result.at("methods").array)
    advertised.push_back(m.string);
  EXPECT_EQ(advertised, fx.single->method_names());
}

TEST(ShardFrontTest, ListStudiesMergesSortedUnion) {
  Fixture fx(2);
  for (const char* s : {"zeta", "alpha", "mid"})
    front_line(*fx.front, R"({"method":"open_study","study":")" +
                              std::string(s) + "\"}");
  obs::JsonValue list = obs::parse_json(
      front_line(*fx.front, R"({"method":"list_studies"})"));
  ASSERT_TRUE(list.at("ok").boolean);
  std::vector<std::string> names;
  for (const auto& s : list.at("result").at("studies").array)
    names.push_back(s.string);
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

TEST(ShardFrontTest, StatsAndHealthMergeAcrossShards) {
  Fixture fx(2);
  std::uint64_t seed = 1;
  for (const char* s : {"alpha", "beta", "gamma"}) {
    front_line(*fx.front, R"({"method":"open_study","study":")" +
                              std::string(s) + "\"}");
    front_line(*fx.front, append_line(s, "A", seed++));
    front_line(*fx.front, append_line(s, "B", seed++));
  }
  obs::JsonValue stats = obs::parse_json(
      front_line(*fx.front, R"({"method":"stats"})"));
  ASSERT_TRUE(stats.at("ok").boolean) << "stats failed";
  const obs::JsonValue& result = stats.at("result");
  EXPECT_EQ(result.at("shards").number, 2.0);
  EXPECT_EQ(result.at("studies").number, 3.0);   // summed across shards
  EXPECT_EQ(result.at("appends").number, 6.0);
  EXPECT_FALSE(result.at("draining").boolean);

  obs::JsonValue health = obs::parse_json(
      front_line(*fx.front, R"({"method":"health"})"));
  ASSERT_TRUE(health.at("ok").boolean);
  EXPECT_TRUE(health.at("result").at("ok").boolean);
  EXPECT_EQ(health.at("result").at("studies").number, 3.0);

  obs::JsonValue metrics = obs::parse_json(
      front_line(*fx.front, R"({"method":"metrics"})"));
  ASSERT_TRUE(metrics.at("ok").boolean);
  EXPECT_EQ(metrics.at("result")
                .at("counters")
                .at("perftrackd_requests_total{method=\"append_experiment\"}")
                .number,
            6.0);

  // Prometheus exposition does not merge across processes; the front
  // says so with a typed error instead of serving misleading text.
  obs::JsonValue prom = obs::parse_json(front_line(
      *fx.front, R"({"method":"metrics","params":{"format":"prometheus"}})"));
  EXPECT_FALSE(prom.at("ok").boolean);
  EXPECT_EQ(prom.at("error").at("code").string, "bad-request");
}

TEST(ShardFrontTest, ShutdownFansOutAndDrains) {
  Fixture fx(2);
  obs::JsonValue down = obs::parse_json(
      front_line(*fx.front, R"({"method":"shutdown"})"));
  ASSERT_TRUE(down.at("ok").boolean);
  EXPECT_TRUE(down.at("result").at("draining").boolean);
  EXPECT_TRUE(fx.front->shutdown_requested());
  for (auto& worker : fx.workers)
    EXPECT_TRUE(worker->shutdown_requested());
}

TEST(ShardFrontTest, UnreachableShardIsATypedInternalError) {
  std::vector<ShardFront::Backend> backends;
  backends.push_back([](const std::string&) -> std::string {
    throw Error("connection refused");
  });
  ShardFront front(std::move(backends));
  obs::JsonValue v = obs::parse_json(
      front_line(front, R"({"id":1,"method":"regions","study":"s"})"));
  EXPECT_FALSE(v.at("ok").boolean);
  EXPECT_EQ(v.at("error").at("code").string, "internal");
  EXPECT_NE(v.at("error").at("message").string.find("shard"),
            std::string::npos);
}

TEST(ShardFrontTest, MethodTableStaysPinnedToTheService) {
  // The front's local method list (hello) is a copy of the service's
  // dispatch table by construction; this pin fails when someone adds an
  // endpoint to TrackingService and forgets the shard front.
  TrackingService service(test_config());
  std::vector<ShardFront::Backend> backends;
  backends.push_back(backend_of(service));
  ShardFront front(std::move(backends));
  obs::JsonValue front_hello = obs::parse_json(
      front_line(front, R"({"method":"hello"})"));
  obs::JsonValue service_hello = obs::parse_json(
      render_response(service.handle_line(R"({"method":"hello"})")));
  ASSERT_TRUE(front_hello.at("ok").boolean);
  ASSERT_TRUE(service_hello.at("ok").boolean);
  std::vector<std::string> front_methods, service_methods;
  for (const auto& m : front_hello.at("result").at("methods").array)
    front_methods.push_back(m.string);
  for (const auto& m : service_hello.at("result").at("methods").array)
    service_methods.push_back(m.string);
  EXPECT_EQ(front_methods, service_methods);
}

}  // namespace
}  // namespace perftrack::serve
