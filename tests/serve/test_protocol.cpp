#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <iterator>
#include <set>
#include <string>

#include "obs/json.hpp"

namespace perftrack::serve {
namespace {

TEST(ProtocolTest, ParsesMinimalRequest) {
  Request r = parse_request(R"({"method":"ping"})");
  EXPECT_EQ(r.method, "ping");
  EXPECT_EQ(r.id, "");
  EXPECT_EQ(r.study, "");
  EXPECT_EQ(r.params.type, obs::JsonValue::Type::Null);
}

TEST(ProtocolTest, ParsesFullRequestAndEchoesRawId) {
  Request r = parse_request(
      R"({"id":42,"method":"append_experiment","study":"wrf",)"
      R"("params":{"path":"a.ptt","eps":0.05}})");
  EXPECT_EQ(r.id, "42");
  EXPECT_EQ(r.method, "append_experiment");
  EXPECT_EQ(r.study, "wrf");
  ASSERT_TRUE(r.params.is_object());
  EXPECT_EQ(r.params.at("path").string, "a.ptt");
  EXPECT_DOUBLE_EQ(r.params.at("eps").number, 0.05);
}

TEST(ProtocolTest, StringIdsKeepTheirQuotes) {
  Request r = parse_request(R"({"id":"req-7","method":"ping"})");
  EXPECT_EQ(r.id, "\"req-7\"");
  Response ok = make_result(r, "{}");
  EXPECT_EQ(render_response(ok), R"({"id":"req-7","ok":true,"result":{}})");
}

TEST(ProtocolTest, MalformedLinesAreBadRequests) {
  const char* bad[] = {
      "not json at all",
      "[1,2,3]",                         // not an object
      R"({"study":"x"})",                // no method
      R"({"method":7})",                 // ill-typed method
      R"({"method":"ping","study":7})",  // ill-typed study
      R"({"method":"ping","params":3})", // ill-typed params
  };
  for (const char* line : bad) {
    try {
      parse_request(line);
      FAIL() << "expected BadRequest for: " << line;
    } catch (const ServeError& error) {
      EXPECT_EQ(error.code(), ErrorCode::BadRequest) << line;
    }
  }
}

TEST(ProtocolTest, RenderedResponsesAreOneLineOfValidJson) {
  Request r = parse_request(R"({"id":1,"method":"ping"})");
  std::string ok = render_response(make_result(r, R"({"pong":true})"));
  EXPECT_EQ(ok.find('\n'), std::string::npos);
  obs::JsonValue v = obs::parse_json(ok);
  EXPECT_DOUBLE_EQ(v.at("id").number, 1.0);
  EXPECT_TRUE(v.at("ok").boolean);
  EXPECT_TRUE(v.at("result").at("pong").boolean);

  std::string err = render_response(
      make_error(r, ErrorCode::UnknownStudy, "no study named 'x'"));
  obs::JsonValue e = obs::parse_json(err);
  EXPECT_FALSE(e.at("ok").boolean);
  EXPECT_EQ(e.at("error").at("code").string, "unknown-study");
  EXPECT_EQ(e.at("error").at("message").string, "no study named 'x'");
}

TEST(ProtocolTest, ResponsesWithoutIdOmitTheField) {
  std::string line = render_response(
      make_error(Request{}, ErrorCode::BadRequest, "bad line"));
  obs::JsonValue v = obs::parse_json(line);
  EXPECT_FALSE(v.has("id"));
  EXPECT_EQ(v.at("error").at("code").string, "bad-request");
}

TEST(ProtocolTest, ErrorCodeNamesAreStableAndDistinct) {
  const ErrorCode codes[] = {
      ErrorCode::BadRequest,   ErrorCode::UnknownMethod,
      ErrorCode::UnknownStudy, ErrorCode::StudyExists,
      ErrorCode::InvalidConfig, ErrorCode::ParseFailure,
      ErrorCode::IoFailure,    ErrorCode::TrackingFailed,
      ErrorCode::Overloaded,   ErrorCode::ShuttingDown,
      ErrorCode::Internal,
  };
  std::set<std::string> names;
  for (ErrorCode code : codes) {
    std::string name(error_code_name(code));
    EXPECT_FALSE(name.empty());
    // Wire names are kebab-case and unique.
    for (char c : name) EXPECT_TRUE(std::islower(c) || c == '-') << name;
    names.insert(name);
  }
  EXPECT_EQ(names.size(), std::size(codes));
  EXPECT_EQ(error_code_name(ErrorCode::Overloaded), "overloaded");
  EXPECT_EQ(error_code_name(ErrorCode::ShuttingDown), "shutting-down");
}

}  // namespace
}  // namespace perftrack::serve
