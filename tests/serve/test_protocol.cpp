#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <iterator>
#include <set>
#include <string>

#include "obs/json.hpp"

namespace perftrack::serve {
namespace {

TEST(ProtocolTest, ParsesMinimalRequest) {
  Request r = parse_request(R"({"method":"ping"})");
  EXPECT_EQ(r.method, "ping");
  EXPECT_EQ(r.id, "");
  EXPECT_EQ(r.study, "");
  EXPECT_EQ(r.params.type, obs::JsonValue::Type::Null);
}

TEST(ProtocolTest, ParsesFullRequestAndEchoesRawId) {
  Request r = parse_request(
      R"({"id":42,"method":"append_experiment","study":"wrf",)"
      R"("params":{"path":"a.ptt","eps":0.05}})");
  EXPECT_EQ(r.id, "42");
  EXPECT_EQ(r.method, "append_experiment");
  EXPECT_EQ(r.study, "wrf");
  ASSERT_TRUE(r.params.is_object());
  EXPECT_EQ(r.params.at("path").string, "a.ptt");
  EXPECT_DOUBLE_EQ(r.params.at("eps").number, 0.05);
}

TEST(ProtocolTest, StringIdsKeepTheirQuotes) {
  Request r = parse_request(R"({"id":"req-7","method":"ping"})");
  EXPECT_EQ(r.id, "\"req-7\"");
  Response ok = make_result(r, "{}");
  EXPECT_EQ(render_response(ok), R"({"id":"req-7","ok":true,"result":{}})");
}

TEST(ProtocolTest, MalformedLinesAreBadRequests) {
  const char* bad[] = {
      "not json at all",
      "[1,2,3]",                         // not an object
      R"({"study":"x"})",                // no method
      R"({"method":7})",                 // ill-typed method
      R"({"method":"ping","study":7})",  // ill-typed study
      R"({"method":"ping","params":3})", // ill-typed params
  };
  for (const char* line : bad) {
    try {
      parse_request(line);
      FAIL() << "expected BadRequest for: " << line;
    } catch (const ServeError& error) {
      EXPECT_EQ(error.code(), ErrorCode::BadRequest) << line;
    }
  }
}

TEST(ProtocolTest, RenderedResponsesAreOneLineOfValidJson) {
  Request r = parse_request(R"({"id":1,"method":"ping"})");
  std::string ok = render_response(make_result(r, R"({"pong":true})"));
  EXPECT_EQ(ok.find('\n'), std::string::npos);
  obs::JsonValue v = obs::parse_json(ok);
  EXPECT_DOUBLE_EQ(v.at("id").number, 1.0);
  EXPECT_TRUE(v.at("ok").boolean);
  EXPECT_TRUE(v.at("result").at("pong").boolean);

  std::string err = render_response(
      make_error(r, ErrorCode::UnknownStudy, "no study named 'x'"));
  obs::JsonValue e = obs::parse_json(err);
  EXPECT_FALSE(e.at("ok").boolean);
  EXPECT_EQ(e.at("error").at("code").string, "unknown-study");
  EXPECT_EQ(e.at("error").at("message").string, "no study named 'x'");
}

TEST(ProtocolTest, ResponsesWithoutIdOmitTheField) {
  std::string line = render_response(
      make_error(Request{}, ErrorCode::BadRequest, "bad line"));
  obs::JsonValue v = obs::parse_json(line);
  EXPECT_FALSE(v.has("id"));
  EXPECT_EQ(v.at("error").at("code").string, "bad-request");
}

TEST(ProtocolTest, ErrorCodeNamesAreStableAndDistinct) {
  const ErrorCode codes[] = {
      ErrorCode::BadRequest,   ErrorCode::UnknownMethod,
      ErrorCode::UnknownStudy, ErrorCode::StudyExists,
      ErrorCode::InvalidConfig, ErrorCode::ParseFailure,
      ErrorCode::IoFailure,    ErrorCode::TrackingFailed,
      ErrorCode::ReplayFailed, ErrorCode::Overloaded,
      ErrorCode::ShuttingDown, ErrorCode::Internal,
  };
  std::set<std::string> names;
  for (ErrorCode code : codes) {
    std::string name(error_code_name(code));
    EXPECT_FALSE(name.empty());
    // Wire names are kebab-case and unique.
    for (char c : name) EXPECT_TRUE(std::islower(c) || c == '-') << name;
    names.insert(name);
  }
  EXPECT_EQ(names.size(), std::size(codes));
  EXPECT_EQ(error_code_name(ErrorCode::Overloaded), "overloaded");
  EXPECT_EQ(error_code_name(ErrorCode::ShuttingDown), "shutting-down");
}

// ---------------------------------------------------------------------------
// Protocol v2 pins. The version is additive: these tests are the contract
// that lets a v1 client keep talking to a v2 daemon and vice versa.

TEST(ProtocolV2Test, VersionIsTwo) { EXPECT_EQ(kProtocolVersion, 2u); }

TEST(ProtocolV2Test, TolerantReaderSkipsUnknownRequestFields) {
  // A v3 client may send fields this build has never heard of; the parse
  // must succeed and keep the fields it knows.
  Request r = parse_request(
      R"({"id":7,"method":"ping","future":{"deep":[1,{"x":2}]},)"
      R"("flag":true,"note":"from tomorrow"})");
  EXPECT_EQ(r.method, "ping");
  EXPECT_EQ(r.id, "7");
}

TEST(ProtocolV2Test, UnknownMethodsStayInsideTheClosedEnum) {
  // Forward compatibility for *methods* is the error enum, not a parse
  // failure: the request parses, and the service answers unknown-method.
  Request r = parse_request(R"({"method":"method_from_v9"})");
  EXPECT_EQ(r.method, "method_from_v9");
  EXPECT_EQ(error_code_name(ErrorCode::UnknownMethod), "unknown-method");
}

TEST(ProtocolV2Test, RawPassthroughRendersVerbatim) {
  // The shard front answers proxied requests with the worker's bytes
  // unchanged; render_response must not touch them.
  Response proxied;
  proxied.ok = false;  // ignored: raw wins over every other field
  proxied.raw = R"({"id":"x-1","ok":true,"result":{"pong":true,"proto":2}})";
  EXPECT_EQ(render_response(proxied), proxied.raw);
}

}  // namespace
}  // namespace perftrack::serve
