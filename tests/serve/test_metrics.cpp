// The serve-layer metrics plane: stats/metrics/health round-trips,
// Prometheus exposition over the protocol and over the HTTP scrape
// endpoint, the access log's request records, and the metrics-off mode.

#include "serve/metrics.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>

#include "obs/json.hpp"
#include "serve/access_log.hpp"
#include "serve/client.hpp"
#include "serve/metrics_http.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "testing/test_traces.hpp"
#include "trace/trace_io.hpp"

namespace perftrack::serve {
namespace {

namespace fs = std::filesystem;

using perftrack::testing::MiniPhase;
using perftrack::testing::MiniTraceSpec;
using perftrack::testing::make_mini_trace;

std::string trace_text(const std::string& label, std::uint64_t seed) {
  MiniTraceSpec spec;
  spec.label = label;
  spec.seed = seed;
  spec.noise = 0.02;
  spec.phases = {MiniPhase{8e6, 1.0, {"p1", "x.c", 1}},
                 MiniPhase{1e6, 2.0, {"p2", "x.c", 2}}};
  std::ostringstream out;
  trace::write_trace(out, *make_mini_trace(spec));
  return out.str();
}

ServiceConfig test_config() {
  ServiceConfig config;
  config.session.clustering.dbscan.eps = 0.05;
  config.session.clustering.dbscan.min_pts = 3;
  return config;
}

Request req(const std::string& method, const std::string& study = "") {
  Request r;
  r.method = method;
  r.study = study;
  return r;
}

void set_param(Request& r, const std::string& name, const std::string& v) {
  r.params.type = obs::JsonValue::Type::Object;
  obs::JsonValue value;
  value.type = obs::JsonValue::Type::String;
  value.string = v;
  r.params.object[name] = std::move(value);
}

obs::JsonValue result_of(const Response& response) {
  EXPECT_TRUE(response.ok) << response.message;
  return obs::parse_json(response.result_json);
}

// ---------------------------------------------------------------------------
// Protocol surface

TEST(ServeMetricsTest, HealthReportsOkAndUptime) {
  TrackingService service(test_config());
  const obs::JsonValue health = result_of(service.handle(req("health")));
  EXPECT_TRUE(health.at("ok").boolean);
  EXPECT_FALSE(health.at("draining").boolean);
  EXPECT_GE(health.at("uptime_ns").number, 0.0);
  EXPECT_EQ(health.at("studies").number, 0.0);
}

TEST(ServeMetricsTest, MetricsMethodReturnsJsonSnapshot) {
  TrackingService service(test_config());
  service.handle(req("ping"));
  service.handle(req("ping"));
  const obs::JsonValue snap = result_of(service.handle(req("metrics")));
  EXPECT_EQ(
      snap.at("counters").at("perftrackd_requests_total{method=\"ping\"}")
          .number,
      2.0);
  // The handler histogram fills even without a transport in front.
  const obs::JsonValue& hist = snap.at("histograms")
      .at("perftrackd_handler_ns{method=\"ping\"}");
  EXPECT_EQ(hist.at("count").number, 2.0);
  EXPECT_GE(hist.at("p99").number, hist.at("p50").number);
}

TEST(ServeMetricsTest, MetricsMethodPrometheusFormat) {
  TrackingService service(test_config());
  service.handle(req("ping"));
  Request request = req("metrics");
  set_param(request, "format", "prometheus");
  const obs::JsonValue result = result_of(service.handle(request));
  EXPECT_EQ(result.at("content_type").string,
            "text/plain; version=0.0.4");
  const std::string& text = result.at("text").string;
  EXPECT_NE(text.find("# TYPE perftrackd_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("perftrackd_requests_total{method=\"ping\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE perftrackd_uptime_seconds gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE perftrackd_handler_ns histogram\n"),
            std::string::npos);
}

TEST(ServeMetricsTest, MetricsMethodRejectsUnknownFormat) {
  TrackingService service(test_config());
  Request request = req("metrics");
  set_param(request, "format", "xml");
  const Response response = service.handle(request);
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.code, ErrorCode::BadRequest);
}

TEST(ServeMetricsTest, ErrorsAreCountedByCode) {
  TrackingService service(test_config());
  service.handle(req("regions", "never-opened"));
  service.handle(req("no_such_method"));
  const obs::JsonValue snap = result_of(service.handle(req("metrics")));
  EXPECT_EQ(snap.at("counters")
                .at("perftrackd_errors_total{code=\"unknown-study\"}")
                .number,
            1.0);
  EXPECT_EQ(snap.at("counters")
                .at("perftrackd_errors_total{code=\"unknown-method\"}")
                .number,
            1.0);
  // Unknown methods share the bounded "other" request slot.
  EXPECT_EQ(
      snap.at("counters").at("perftrackd_requests_total{method=\"other\"}")
          .number,
      1.0);
}

TEST(ServeMetricsTest, StatsCarriesLatencySectionAndCacheTotals) {
  TrackingService service(test_config());
  service.handle(req("open_study", "s"));
  for (int i = 0; i < 3; ++i) {
    Request append = req("append_experiment", "s");
    set_param(append, "trace", trace_text("E" + std::to_string(i), 40 + i));
    ASSERT_TRUE(service.handle(append).ok);
  }
  ASSERT_TRUE(service.handle(req("retrack", "s")).ok);

  const obs::JsonValue stats = result_of(service.handle(req("stats")));
  EXPECT_GT(stats.at("uptime_ns").number, 0.0);
  ASSERT_TRUE(stats.has("cache"));
  EXPECT_GE(stats.at("cache").at("hits").number, 0.0);
  ASSERT_TRUE(stats.has("latency"));
  const obs::JsonValue& latency = stats.at("latency");
  ASSERT_TRUE(latency.has("append_experiment"));
  EXPECT_EQ(latency.at("append_experiment").at("count").number, 3.0);
  EXPECT_GE(latency.at("append_experiment").at("p99_ns").number,
            latency.at("append_experiment").at("p50_ns").number);
  EXPECT_GE(latency.at("retrack").at("max_ns").number,
            latency.at("retrack").at("p99_ns").number / (1.0 + 1.0 / 32));
}

TEST(ServeMetricsTest, MetricsOffRecordsNothing) {
  ServiceConfig config = test_config();
  config.metrics = false;
  TrackingService service(config);
  service.handle(req("ping"));
  service.handle(req("regions", "nope"));
  const obs::JsonValue snap = result_of(service.handle(req("metrics")));
  EXPECT_EQ(
      snap.at("counters").at("perftrackd_requests_total{method=\"ping\"}")
          .number,
      0.0);
  const obs::JsonValue stats = result_of(service.handle(req("stats")));
  EXPECT_TRUE(stats.at("latency").object.empty());
}

TEST(ServeMetricsTest, LatencyOverStreamTransportIsEndToEnd) {
  // Through serve_stream the request histograms (not just handler) fill,
  // and the phase histograms see parse/queue/write.
  TrackingService service(test_config());
  std::istringstream in(
      "{\"id\":1,\"method\":\"ping\"}\n"
      "{\"id\":2,\"method\":\"ping\"}\n"
      "not json\n");
  std::ostringstream out;
  ASSERT_EQ(serve_stream(service, in, out, ServerOptions{}), 0);

  const obs::JsonValue snap = result_of(service.handle(req("metrics")));
  EXPECT_EQ(snap.at("histograms")
                .at("perftrackd_request_ns{method=\"ping\"}")
                .at("count")
                .number,
            2.0);
  EXPECT_EQ(
      snap.at("counters").at("perftrackd_requests_total{method=\"invalid\"}")
          .number,
      1.0);
  EXPECT_EQ(snap.at("counters")
                .at("perftrackd_errors_total{code=\"bad-request\"}")
                .number,
            1.0);
  EXPECT_GE(snap.at("histograms")
                .at("perftrackd_phase_ns{phase=\"parse\"}")
                .at("count")
                .number,
            2.0);
  EXPECT_GE(snap.at("histograms")
                .at("perftrackd_phase_ns{phase=\"write\"}")
                .at("count")
                .number,
            2.0);
}

// ---------------------------------------------------------------------------
// Access log

TEST(ServeAccessLogTest, OneLinePerRequestWithPhaseBreakdown) {
  TrackingService service(test_config());
  std::ostringstream log_stream;
  AccessLog log(log_stream);
  ServerOptions options;
  options.access_log = &log;

  std::istringstream in(
      "{\"id\":7,\"method\":\"ping\"}\n"
      "{\"id\":\"abc\",\"method\":\"regions\",\"study\":\"missing\"}\n"
      "garbage\n");
  std::ostringstream out;
  ASSERT_EQ(serve_stream(service, in, out, options), 0);

  std::istringstream lines(log_stream.str());
  std::string line;
  int count = 0;
  bool saw_ping = false, saw_error = false, saw_invalid = false;
  while (std::getline(lines, line)) {
    ++count;
    const obs::JsonValue record = obs::parse_json(line);
    ASSERT_TRUE(record.is_object()) << line;
    EXPECT_TRUE(record.has("ts_ms"));
    EXPECT_TRUE(record.has("outcome"));
    EXPECT_TRUE(record.has("total_us"));
    const std::string& method = record.at("method").string;
    if (method == "ping") {
      saw_ping = true;
      EXPECT_EQ(record.at("outcome").string, "ok");
      EXPECT_EQ(record.at("id").string, "7");
    } else if (method == "regions") {
      saw_error = true;
      EXPECT_EQ(record.at("outcome").string, "unknown-study");
      EXPECT_EQ(record.at("study").string, "missing");
    } else if (method == "invalid") {
      saw_invalid = true;
      EXPECT_EQ(record.at("outcome").string, "bad-request");
    }
  }
  EXPECT_EQ(count, 3);
  EXPECT_TRUE(saw_ping);
  EXPECT_TRUE(saw_error);
  EXPECT_TRUE(saw_invalid);
}

TEST(ServeAccessLogTest, SlowThresholdZeroDumpsSpanTreePerRequest) {
  TrackingService service(test_config());
  std::ostringstream log_stream;
  AccessLog log(log_stream);
  ServerOptions options;
  options.access_log = &log;
  options.slow_ns = 0;  // every request is "slow"

  std::istringstream in("{\"id\":1,\"method\":\"ping\"}\n");
  std::ostringstream out;
  ASSERT_EQ(serve_stream(service, in, out, options), 0);

  std::string line;
  std::istringstream lines(log_stream.str());
  ASSERT_TRUE(static_cast<bool>(std::getline(lines, line)));
  const obs::JsonValue record = obs::parse_json(line);
  EXPECT_TRUE(record.at("slow").boolean);
  ASSERT_TRUE(record.has("spans"));
  EXPECT_TRUE(record.at("spans").is_array());
}

// ---------------------------------------------------------------------------
// HTTP scrape endpoint

std::string http_get(const std::string& socket_path,
                     const std::string& path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  std::memcpy(address.sun_path, socket_path.c_str(),
              socket_path.size() + 1);
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&address),
                      sizeof(address)),
            0);
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char chunk[4096];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof chunk, 0)) > 0)
    response.append(chunk, static_cast<std::size_t>(n));
  ::close(fd);
  return response;
}

TEST(ServeMetricsHttpTest, ScrapesPrometheusTextOverUnixSocket) {
  TrackingService service(test_config());
  service.handle(req("ping"));

  const std::string socket_path =
      (fs::temp_directory_path() /
       ("pt_metrics_" + std::to_string(::getpid()) + ".sock"))
          .string();
  MetricsHttpServer http(service);
  ASSERT_TRUE(http.start_unix(socket_path));

  const std::string metrics = http_get(socket_path, "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(metrics.find("perftrackd_requests_total{method=\"ping\"} 1"),
            std::string::npos);

  const std::string json = http_get(socket_path, "/metrics.json");
  EXPECT_NE(json.find("Content-Type: application/json"),
            std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);

  const std::string health = http_get(socket_path, "/health");
  EXPECT_NE(health.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(health.find("\"ok\":true"), std::string::npos);

  EXPECT_NE(http_get(socket_path, "/nope").find("404"), std::string::npos);

  http.stop();
  EXPECT_FALSE(fs::exists(socket_path));
}

TEST(ServeMetricsHttpTest, TcpEphemeralPortResolves) {
  TrackingService service(test_config());
  MetricsHttpServer http(service);
  ASSERT_TRUE(http.start_tcp(0));
  EXPECT_GT(http.port(), 0);
  http.stop();
  EXPECT_EQ(http.port(), 0);
}

// ---------------------------------------------------------------------------
// Client

TEST(ServeStatClientTest, RoundTripsAgainstUnixDaemon) {
  // Full loop: daemon on a unix socket, NdjsonClient calling stats — the
  // `perftrack stat` path minus the table rendering.
  const std::string socket_path =
      (fs::temp_directory_path() /
       ("pt_statd_" + std::to_string(::getpid()) + ".sock"))
          .string();
  TrackingService service(test_config());
  ServerOptions options;
  std::thread daemon([&] {
    serve_unix_socket(service, socket_path, options);
  });
  while (!fs::exists(socket_path))
    std::this_thread::sleep_for(std::chrono::milliseconds(5));

  {
    NdjsonClient client(socket_path);
    ClientResponse pong = client.call("ping");
    ASSERT_TRUE(pong.ok);
    EXPECT_TRUE(pong.result.at("pong").boolean);

    ClientResponse stats = client.call("stats");
    ASSERT_TRUE(stats.ok);
    EXPECT_TRUE(stats.result.has("latency"));
    EXPECT_TRUE(stats.result.has("queue"));

    ClientResponse bad = client.call("never_heard_of_it");
    ASSERT_FALSE(bad.ok);
    EXPECT_EQ(bad.error_code, "unknown-method");

    ASSERT_TRUE(client.call("shutdown").ok);
  }
  daemon.join();
}

}  // namespace
}  // namespace perftrack::serve
