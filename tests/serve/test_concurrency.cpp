// Concurrency stress tests for the tracking service — the CI tsan target.
//
// The contract under test: parallel regions/trends/coverage reads during a
// stream of appends are linearizable against the append log. Every read
// the readers observe must be byte-identical to a serial replay of some
// prefix of the append sequence, and the final state must match the full
// serial replay exactly.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "testing/test_traces.hpp"
#include "trace/trace_io.hpp"
#include "tracking/pipeline.hpp"
#include "tracking/report.hpp"
#include "tracking/trends.hpp"

namespace perftrack::serve {
namespace {

using perftrack::testing::MiniPhase;
using perftrack::testing::MiniTraceSpec;
using perftrack::testing::make_mini_trace;

std::shared_ptr<const trace::Trace> experiment(std::uint64_t seed) {
  MiniTraceSpec spec;
  spec.label = "E" + std::to_string(seed);
  spec.seed = seed;
  spec.noise = 0.02;
  spec.tasks = 2;
  spec.iterations = 3;
  spec.phases = {MiniPhase{8e6, 1.0, {"p1", "x.c", 1}},
                 MiniPhase{1e6, 2.0, {"p2", "x.c", 2}}};
  return make_mini_trace(spec);
}

tracking::SessionConfig fast_config() {
  tracking::SessionConfig config;
  config.clustering.dbscan.eps = 0.05;
  config.clustering.dbscan.min_pts = 3;
  return config;
}

Request req(const std::string& method, const std::string& study = "") {
  Request r;
  r.method = method;
  r.study = study;
  return r;
}

Request append_request(const std::string& study, std::uint64_t seed) {
  Request r = req("append_experiment", study);
  std::ostringstream text;
  trace::write_trace(text, *experiment(seed));
  r.params.type = obs::JsonValue::Type::Object;
  obs::JsonValue trace_param;
  trace_param.type = obs::JsonValue::Type::String;
  trace_param.string = text.str();
  r.params.object["trace"] = std::move(trace_param);
  return r;
}

/// Serial replay: the expected describe_tracking() text after the first
/// `prefix` appends of `seeds` (prefix >= 2).
std::map<std::size_t, std::string> serial_region_texts(
    const std::vector<std::uint64_t>& seeds) {
  std::map<std::size_t, std::string> expected;
  tracking::TrackingPipeline pipeline;
  pipeline.set_config(fast_config());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    pipeline.add_experiment(experiment(seeds[i]));
    if (i + 1 >= 2) expected[i + 1] = describe_tracking(pipeline.run());
  }
  return expected;
}

TEST(ServeConcurrencyTest, ParallelReadsDuringAppendsAreLinearizable) {
  const std::vector<std::uint64_t> seeds = {1, 2, 3, 4, 5, 6};
  const std::map<std::size_t, std::string> expected =
      serial_region_texts(seeds);

  ServiceConfig config;
  config.session = fast_config();
  TrackingService service(config);
  Response opened = service.handle(req("open_study", "hot"));
  ASSERT_TRUE(opened.ok) << opened.message;

  // Writer: appends the sequence one experiment at a time.
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (std::uint64_t seed : seeds) {
      Response r = service.handle(append_request("hot", seed));
      EXPECT_TRUE(r.ok) << r.message;
    }
    done.store(true, std::memory_order_release);
  });

  // Readers: hammer regions/trends/coverage/stats while the writer runs.
  // Every successful read must match the serial replay of some prefix.
  const int kReaders = 4;
  std::vector<std::thread> readers;
  std::vector<std::vector<std::string>> observed(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      const char* methods[] = {"regions", "trends", "coverage", "stats"};
      int i = 0;
      while (!done.load(std::memory_order_acquire)) {
        const char* method = methods[i++ % 4];
        Response r = service.handle(req(method, "hot"));
        if (!r.ok) {
          // Only "fewer than two appends yet" is a legal failure here.
          EXPECT_EQ(r.code, ErrorCode::BadRequest) << r.message;
          continue;
        }
        if (std::string(method) == "regions")
          observed[static_cast<std::size_t>(t)].push_back(
              obs::parse_json(r.result_json).at("text").string);
      }
    });
  }
  writer.join();
  for (std::thread& reader : readers) reader.join();

  std::set<std::string> legal;
  for (const auto& [prefix, text] : expected) legal.insert(text);
  for (const auto& texts : observed)
    for (const std::string& text : texts)
      EXPECT_TRUE(legal.count(text) > 0)
          << "read observed a state that no serial prefix produces:\n"
          << text;

  // Final state == full serial replay, byte for byte.
  Response final_regions = service.handle(req("regions", "hot"));
  ASSERT_TRUE(final_regions.ok);
  EXPECT_EQ(obs::parse_json(final_regions.result_json).at("text").string,
            expected.at(seeds.size()));
}

TEST(ServeConcurrencyTest, ManyStudiesInParallelDoNotInterfere) {
  ServiceConfig config;
  config.session = fast_config();
  TrackingService service(config);

  const int kStudies = 6;
  std::vector<std::thread> workers;
  for (int s = 0; s < kStudies; ++s) {
    workers.emplace_back([&, s] {
      const std::string name = "study-" + std::to_string(s);
      EXPECT_TRUE(service.handle(req("open_study", name)).ok);
      const std::uint64_t base = static_cast<std::uint64_t>(s) * 100 + 1;
      for (std::uint64_t i = 0; i < 3; ++i) {
        EXPECT_TRUE(service.handle(append_request(name, base + i)).ok);
        if (i >= 1) {
          EXPECT_TRUE(service.handle(req("regions", name)).ok);
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  // Each study's final result matches its own serial replay.
  for (int s = 0; s < kStudies; ++s) {
    const std::string name = "study-" + std::to_string(s);
    const std::uint64_t base = static_cast<std::uint64_t>(s) * 100 + 1;
    tracking::TrackingPipeline pipeline;
    pipeline.set_config(fast_config());
    for (std::uint64_t i = 0; i < 3; ++i)
      pipeline.add_experiment(experiment(base + i));
    const std::string expected = describe_tracking(pipeline.run());

    Response r = service.handle(req("regions", name));
    ASSERT_TRUE(r.ok) << r.message;
    EXPECT_EQ(obs::parse_json(r.result_json).at("text").string, expected)
        << name;
  }
}

TEST(ServeConcurrencyTest, EvictionRacesWithReadsSafely) {
  ServiceConfig config;
  config.session = fast_config();
  config.idle_ttl_ns = 1;  // sweep() always evicts whatever is idle
  TrackingService service(config);
  service.handle(req("open_study", "churn"));
  service.handle(append_request("churn", 1));
  service.handle(append_request("churn", 2));

  tracking::TrackingPipeline pipeline;
  pipeline.set_config(fast_config());
  pipeline.add_experiment(experiment(1));
  pipeline.add_experiment(experiment(2));
  const std::string expected = describe_tracking(pipeline.run());

  std::atomic<bool> stop{false};
  std::thread evictor([&] {
    while (!stop.load(std::memory_order_acquire)) service.sweep();
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < 25; ++i) {
        Response r = service.handle(req("regions", "churn"));
        ASSERT_TRUE(r.ok) << r.message;
        // Rebuild-after-evict must reproduce the identical result.
        EXPECT_EQ(obs::parse_json(r.result_json).at("text").string, expected);
        // coverage is not render-cached, so this read races an actual
        // session rebuild against the evictor.
        Response c = service.handle(req("coverage", "churn"));
        ASSERT_TRUE(c.ok) << c.message;
      }
    });
  }
  for (std::thread& reader : readers) reader.join();
  stop.store(true, std::memory_order_release);
  evictor.join();

  Response stats = service.handle(req("stats", "churn"));
  ASSERT_TRUE(stats.ok);
  obs::JsonValue v = obs::parse_json(stats.result_json);
  EXPECT_GE(v.at("rebuilds").number, 1.0) << "eviction actually happened";
}

TEST(ServeConcurrencyTest, MetricsSampledDuringConcurrentAppends) {
  // Samplers hammer stats/metrics/health while writers append — the
  // snapshot path must never block or tear while the histograms are
  // being recorded into.
  ServiceConfig config;
  config.session = fast_config();
  TrackingService service(config);
  ASSERT_TRUE(service.handle(req("open_study", "live")).ok);

  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (std::uint64_t seed = 1; seed <= 6; ++seed)
      EXPECT_TRUE(service.handle(append_request("live", seed)).ok);
    done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> samplers;
  for (int t = 0; t < 3; ++t) {
    samplers.emplace_back([&] {
      const char* methods[] = {"metrics", "stats", "health"};
      int i = 0;
      double last_appends = 0.0;
      while (!done.load(std::memory_order_acquire)) {
        const char* method = methods[i++ % 3];
        Response r = service.handle(req(method));
        ASSERT_TRUE(r.ok) << r.message;
        obs::JsonValue v = obs::parse_json(r.result_json);
        if (std::string(method) == "metrics") {
          // The append counter is monotone under this sampler.
          const double appends =
              v.at("counters")
                  .at("perftrackd_requests_total"
                      "{method=\"append_experiment\"}")
                  .number;
          EXPECT_GE(appends, last_appends);
          last_appends = appends;
        } else if (std::string(method) == "health") {
          EXPECT_TRUE(v.at("ok").boolean);
        }
      }
    });
  }
  writer.join();
  for (std::thread& sampler : samplers) sampler.join();

  // Quiesced: the histograms agree with the work that actually ran.
  Response metrics = service.handle(req("metrics"));
  ASSERT_TRUE(metrics.ok);
  obs::JsonValue v = obs::parse_json(metrics.result_json);
  EXPECT_EQ(v.at("histograms")
                .at("perftrackd_handler_ns{method=\"append_experiment\"}")
                .at("count")
                .number,
            6.0);
}

TEST(ServeConcurrencyTest, StreamServerUnderParallelLoadAnswersEverything) {
  TrackingService service;
  std::string input;
  input += R"({"id":0,"method":"open_study","study":"s"})" "\n";
  const int kRequests = 200;
  for (int i = 1; i <= kRequests; ++i)
    input += R"({"id":)" + std::to_string(i) + R"(,"method":"ping"})" "\n";
  std::istringstream in(input);
  std::ostringstream out;
  ServerOptions options;
  options.threads = 8;
  options.queue_capacity = 16;
  EXPECT_EQ(serve_stream(service, in, out, options), 0);

  // Every request got exactly one answer, in order.
  std::istringstream lines(out.str());
  std::string line;
  int id = 0;
  while (std::getline(lines, line)) {
    obs::JsonValue v = obs::parse_json(line);
    EXPECT_DOUBLE_EQ(v.at("id").number, static_cast<double>(id));
    ++id;
  }
  EXPECT_EQ(id, kRequests + 1);
}

}  // namespace
}  // namespace perftrack::serve
