#include "paraver/pcf.hpp"

#include <gtest/gtest.h>
#include <sstream>

#include "common/error.hpp"

namespace perftrack::paraver {
namespace {

TEST(PcfConfigTest, InternAssignsStableValues) {
  PcfConfig config;
  trace::SourceLocation a{"solve", "solver.f90", 42};
  trace::SourceLocation b{"halo", "comm.f90", 7};
  std::uint64_t va = config.intern_caller(a);
  std::uint64_t vb = config.intern_caller(b);
  EXPECT_NE(va, vb);
  EXPECT_EQ(config.intern_caller(a), va);  // idempotent
  ASSERT_NE(config.caller(va), nullptr);
  EXPECT_EQ(*config.caller(va), a);
  EXPECT_EQ(config.caller(999), nullptr);
}

TEST(PcfRoundTrip, CallersAndApplicationSurvive) {
  PcfConfig config;
  config.application = "WRF";
  config.set_caller(1, {"solve_em", "module_comm_dm.f90", 4939});
  config.set_caller(2, {"operator new [](unsigned long)", "mm.cpp", 12});

  std::stringstream stream;
  write_pcf(stream, config);
  PcfConfig loaded = read_pcf(stream);

  EXPECT_EQ(loaded.application, "WRF");
  ASSERT_NE(loaded.caller(1), nullptr);
  EXPECT_EQ(loaded.caller(1)->function, "solve_em");
  EXPECT_EQ(loaded.caller(1)->file, "module_comm_dm.f90");
  EXPECT_EQ(loaded.caller(1)->line, 4939u);
  ASSERT_NE(loaded.caller(2), nullptr);
  EXPECT_EQ(loaded.caller(2)->function, "operator new [](unsigned long)");
}

TEST(PcfRead, LabelWithoutLocationFallsBack) {
  std::stringstream stream(
      "EVENT_TYPE\n"
      "0    30000000    Caller at level 1\n"
      "VALUES\n"
      "0      End\n"
      "3      mysterious_function\n");
  PcfConfig config = read_pcf(stream);
  ASSERT_NE(config.caller(3), nullptr);
  EXPECT_EQ(config.caller(3)->function, "mysterious_function");
  EXPECT_EQ(config.caller(3)->line, 0u);
}

TEST(PcfRead, IgnoresForeignEventTypes) {
  std::stringstream stream(
      "EVENT_TYPE\n"
      "0    40000001    Some other event\n"
      "VALUES\n"
      "1      NotACaller\n"
      "\n"
      "EVENT_TYPE\n"
      "0    30000000    Caller at level 1\n"
      "VALUES\n"
      "1      real_caller (x.c:9)\n");
  PcfConfig config = read_pcf(stream);
  ASSERT_NE(config.caller(1), nullptr);
  EXPECT_EQ(config.caller(1)->function, "real_caller");
  EXPECT_EQ(config.caller(1)->line, 9u);
}

TEST(PcfRead, MalformedValueThrows) {
  std::stringstream stream(
      "EVENT_TYPE\n"
      "0    30000000    Caller at level 1\n"
      "VALUES\n"
      "abc    broken\n");
  EXPECT_THROW(read_pcf(stream), ParseError);
}

}  // namespace
}  // namespace perftrack::paraver
