#include "paraver/prv.hpp"

#include <cstdio>
#include <gtest/gtest.h>
#include <sstream>

#include "common/error.hpp"
#include "sim/apps/apps.hpp"
#include "testing/test_traces.hpp"

namespace perftrack::paraver {
namespace {

using perftrack::testing::MiniPhase;
using perftrack::testing::MiniTraceSpec;
using perftrack::testing::make_mini_trace;

std::shared_ptr<const trace::Trace> sample_trace() {
  MiniTraceSpec spec;
  spec.label = "sample";
  spec.tasks = 3;
  spec.iterations = 4;
  spec.phases = {MiniPhase{2e6, 1.0, {"solve", "solver.f90", 42}},
                 MiniPhase{5e5, 2.0, {"halo", "comm.f90", 7}}};
  return make_mini_trace(spec);
}

trace::Trace round_trip(const trace::Trace& original) {
  std::stringstream prv, pcf;
  detail::write_prv_streams(prv, pcf, original);
  return detail::read_prv_streams(prv, pcf);
}

TEST(PrvRoundTrip, BurstsSurvive) {
  auto original = sample_trace();
  trace::Trace loaded = round_trip(*original);
  EXPECT_EQ(loaded.application(), original->application());
  EXPECT_EQ(loaded.num_tasks(), original->num_tasks());
  ASSERT_EQ(loaded.burst_count(), original->burst_count());
  // Bursts may be reordered globally (sorted by time) but per task the
  // sequences must match exactly up to 1 ns quantisation.
  for (std::uint32_t task = 0; task < original->num_tasks(); ++task) {
    auto lhs = original->task_bursts(task);
    auto rhs = loaded.task_bursts(task);
    ASSERT_EQ(lhs.size(), rhs.size());
    for (std::size_t i = 0; i < lhs.size(); ++i) {
      const trace::Burst& a = original->bursts()[lhs[i]];
      const trace::Burst& b = loaded.bursts()[rhs[i]];
      EXPECT_NEAR(a.begin_time, b.begin_time, 2e-9);
      EXPECT_NEAR(a.duration, b.duration, 2e-9);
      EXPECT_NEAR(a.counters.get(trace::Counter::Instructions),
                  b.counters.get(trace::Counter::Instructions), 0.51);
      EXPECT_NEAR(a.counters.get(trace::Counter::Cycles),
                  b.counters.get(trace::Counter::Cycles), 0.51);
      EXPECT_EQ(original->callstacks().resolve(a.callstack),
                loaded.callstacks().resolve(b.callstack));
    }
  }
}

TEST(PrvRoundTrip, SimulatedApplicationSurvives) {
  sim::AppModel app = sim::make_hydroc();
  sim::Scenario scenario;
  scenario.label = "hydroc";
  scenario.num_tasks = 4;
  scenario.block_kb = 32.0;
  scenario.iterations = 6;
  trace::Trace original = app.simulate(scenario);
  trace::Trace loaded = round_trip(original);
  EXPECT_EQ(loaded.burst_count(), original.burst_count());
  double total_in = original.total_computation_time();
  double total_out = loaded.total_computation_time();
  EXPECT_NEAR(total_out, total_in, total_in * 1e-6);
}

TEST(PrvRoundTrip, FileApi) {
  auto original = sample_trace();
  std::string base = ::testing::TempDir() + "/pt_prv_test";
  save_prv(base, *original);
  trace::Trace loaded = load_prv(base);
  EXPECT_EQ(loaded.burst_count(), original->burst_count());
  std::remove((base + ".prv").c_str());
  std::remove((base + ".pcf").c_str());
}

TEST(PrvRead, MissingHeaderThrows) {
  std::stringstream prv("1:1:1:1:1:0:100:1\n");
  std::stringstream pcf;
  EXPECT_THROW(detail::read_prv_streams(prv, pcf), ParseError);
}

TEST(PrvRead, TaskOutOfRangeThrows) {
  std::stringstream prv(
      "#Paraver (01/01/2026 at 00:00):1000_ns:1(1):1:1(1:1)\n"
      "1:9:1:9:1:0:100:1\n");
  std::stringstream pcf;
  EXPECT_THROW(detail::read_prv_streams(prv, pcf), ParseError);
}

TEST(PrvRead, BadStateIntervalThrows) {
  std::stringstream prv(
      "#Paraver (01/01/2026 at 00:00):1000_ns:1(1):1:1(1:1)\n"
      "1:1:1:1:1:200:100:1\n");
  std::stringstream pcf;
  EXPECT_THROW(detail::read_prv_streams(prv, pcf), ParseError);
}

TEST(PrvRead, UnknownRecordKindThrows) {
  std::stringstream prv(
      "#Paraver (01/01/2026 at 00:00):1000_ns:1(1):1:1(1:1)\n"
      "7:1:1:1:1:0\n");
  std::stringstream pcf;
  EXPECT_THROW(detail::read_prv_streams(prv, pcf), ParseError);
}

TEST(PrvRead, CommRecordsAreSkipped) {
  std::stringstream prv(
      "#Paraver (01/01/2026 at 00:00):1000_ns:1(2):1:2(1:1,1:1)\n"
      "3:1:1:1:1:0:0:2:1:2:1:10:10:8:1\n"
      "1:1:1:1:1:0:100:1\n"
      "2:1:1:1:1:100:42000050:1000:42000059:2000\n");
  std::stringstream pcf;
  trace::Trace loaded = detail::read_prv_streams(prv, pcf);
  EXPECT_EQ(loaded.burst_count(), 1u);
  EXPECT_DOUBLE_EQ(
      loaded.bursts()[0].counters.get(trace::Counter::Instructions), 1000.0);
}

TEST(PrvRead, NonRunningStatesIgnored) {
  std::stringstream prv(
      "#Paraver (01/01/2026 at 00:00):1000_ns:1(1):1:1(1:1)\n"
      "1:1:1:1:1:0:50:7\n"   // state 7: not running
      "1:1:1:1:1:50:100:1\n"
      "2:1:1:1:1:100:42000050:5:42000059:10\n");
  std::stringstream pcf;
  trace::Trace loaded = detail::read_prv_streams(prv, pcf);
  ASSERT_EQ(loaded.burst_count(), 1u);
  EXPECT_NEAR(loaded.bursts()[0].begin_time, 50e-9, 1e-12);
}

TEST(PrvRead, UnknownCallerValueThrows) {
  std::stringstream prv(
      "#Paraver (01/01/2026 at 00:00):1000_ns:1(1):1:1(1:1)\n"
      "1:1:1:1:1:0:100:1\n"
      "2:1:1:1:1:100:42000050:5:30000000:77\n");
  std::stringstream pcf;
  EXPECT_THROW(detail::read_prv_streams(prv, pcf), ParseError);
}

}  // namespace
}  // namespace perftrack::paraver
