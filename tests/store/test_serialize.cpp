#include "store/serialize.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "common/error.hpp"

namespace perftrack::store {
namespace {

TEST(SerializeTest, PrimitivesRoundTrip) {
  BinWriter w;
  w.u8(0xab);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefull);
  w.i32(-42);
  w.f64(3.14159);
  w.str("hello \0 world");  // embedded NUL is cut by the literal, fine
  std::string bytes = w.take();

  BinReader r(bytes);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.f64(), 3.14159);
  EXPECT_EQ(r.str(), "hello ");
  EXPECT_TRUE(r.done());
}

TEST(SerializeTest, DoublesAreBitExact) {
  // The session equivalence guarantee rests on doubles surviving
  // save/load byte-for-byte, including the values formatting would mangle.
  const double values[] = {0.0,
                           -0.0,
                           1.0 / 3.0,
                           std::numeric_limits<double>::denorm_min(),
                           std::numeric_limits<double>::max(),
                           -std::numeric_limits<double>::infinity(),
                           std::nextafter(1.0, 2.0)};
  BinWriter w;
  for (double v : values) w.f64(v);
  std::string bytes = w.take();
  BinReader r(bytes);
  for (double v : values) {
    double back = r.f64();
    EXPECT_EQ(std::memcmp(&back, &v, sizeof v), 0);
  }
  // NaN keeps its exact payload bits too.
  double nan = std::numeric_limits<double>::quiet_NaN();
  BinWriter wn;
  wn.f64(nan);
  std::string nb = wn.take();
  BinReader rn(nb);
  double back = rn.f64();
  EXPECT_EQ(std::memcmp(&back, &nan, sizeof nan), 0);
}

TEST(SerializeTest, VectorsRoundTrip) {
  BinWriter w;
  w.u32_vec({1, 2, 3});
  w.i32_vec({-1, 0, 7});
  w.f64_vec({0.5, -2.25});
  w.bool_vec({true, false, true, true});
  w.u32_vec({});
  std::string bytes = w.take();

  BinReader r(bytes);
  EXPECT_EQ(r.u32_vec(), (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_EQ(r.i32_vec(), (std::vector<std::int32_t>{-1, 0, 7}));
  EXPECT_EQ(r.f64_vec(), (std::vector<double>{0.5, -2.25}));
  EXPECT_EQ(r.bool_vec(), (std::vector<bool>{true, false, true, true}));
  EXPECT_EQ(r.u32_vec(), std::vector<std::uint32_t>{});
  EXPECT_TRUE(r.done());
}

TEST(SerializeTest, TruncationIsParseErrorEverywhere) {
  BinWriter w;
  w.u32(7);
  w.f64(1.5);
  w.str("abcdef");
  w.u32_vec({1, 2, 3, 4});
  std::string bytes = w.take();

  // Every proper prefix must fail cleanly, never read out of bounds.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    BinReader r(std::string_view(bytes).substr(0, cut));
    EXPECT_THROW(
        {
          r.u32();
          r.f64();
          r.str();
          r.u32_vec();
        },
        ParseError)
        << "prefix length " << cut;
  }
}

TEST(SerializeTest, ImpossibleLengthPrefixRejectedBeforeAllocation) {
  // A 4-byte buffer claiming 2^32-1 doubles must be rejected by the
  // length check, not by a giant allocation.
  BinWriter w;
  w.u32(0xffffffffu);
  std::string bytes = w.take();
  BinReader r(bytes);
  EXPECT_THROW(r.f64_vec(), ParseError);

  BinReader r2(bytes);
  EXPECT_THROW(r2.length(8), ParseError);
}

TEST(SerializeTest, Fnv1a64MatchesReferenceAndBasisSeparatesStreams) {
  // Reference vectors for 64-bit FNV-1a with the standard offset basis.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
  // A different basis yields an independent stream over the same bytes —
  // the two halves of the 128-bit cache key.
  EXPECT_NE(fnv1a64("foobar", 0x6c62272e07bb0142ull), fnv1a64("foobar"));
}

}  // namespace
}  // namespace perftrack::store
