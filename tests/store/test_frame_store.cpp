#include "store/frame_store.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "cluster/frame.hpp"
#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "store/frame_codec.hpp"
#include "testing/test_traces.hpp"
#include "tracking/report.hpp"
#include "tracking/session.hpp"

namespace perftrack::store {
namespace {

namespace fs = std::filesystem;

using perftrack::testing::MiniPhase;
using perftrack::testing::MiniTraceSpec;
using perftrack::testing::make_mini_trace;

std::shared_ptr<const trace::Trace> sample_trace(const std::string& label,
                                                 std::uint64_t seed) {
  MiniTraceSpec spec;
  spec.label = label;
  spec.seed = seed;
  spec.phases = {MiniPhase{8e6, 1.0, {"p1", "x.c", 1}},
                 MiniPhase{1e6, 2.0, {"p2", "x.c", 2}}};
  return make_mini_trace(spec);
}

cluster::ClusteringParams sample_params() {
  cluster::ClusteringParams params;
  params.dbscan.eps = 0.05;
  params.dbscan.min_pts = 3;
  return params;
}

/// Fresh per-test cache directory under gtest's temp root.
fs::path fresh_dir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / ("pt_store_" + name);
  fs::remove_all(dir);
  return dir;
}

StoreConfig config_for(const fs::path& dir) {
  StoreConfig config;
  config.directory = dir.string();
  return config;
}

TEST(FrameStoreTest, DisabledStoreNeverTouchesDisk) {
  FrameStore store(StoreConfig{});
  EXPECT_FALSE(store.enabled());
  auto source = sample_trace("A", 1);
  cluster::Frame frame = cluster::build_frame(source, sample_params());
  std::string key = FrameStore::key_for(*source, sample_params());
  store.store(key, frame);
  EXPECT_FALSE(store.load(key, source).has_value());
  EXPECT_EQ(store.stats().stores, 0u);
  EXPECT_EQ(store.stats().misses, 0u);
}

TEST(FrameStoreTest, StoreThenLoadIsHitWithIdenticalFrame) {
  fs::path dir = fresh_dir("hit");
  FrameStore store(config_for(dir));
  auto source = sample_trace("A", 1);
  cluster::ClusteringParams params = sample_params();
  cluster::Frame frame = cluster::build_frame(source, params);
  std::string key = FrameStore::key_for(*source, params);

  EXPECT_FALSE(store.load(key, source).has_value());
  EXPECT_EQ(store.stats().misses, 1u);

  store.store(key, frame);
  EXPECT_EQ(store.stats().stores, 1u);
  EXPECT_TRUE(fs::exists(dir / (key + ".ptf")));

  std::optional<cluster::Frame> back = store.load(key, source);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(store.stats().hits, 1u);
  // Same bytes as a direct encode: the cache returns the exact frame.
  EXPECT_EQ(encode_frame(*back), encode_frame(frame));
  EXPECT_EQ(&back->source(), source.get());
}

TEST(FrameStoreTest, KeyDependsOnTraceParamsAndNothingElse) {
  auto a1 = sample_trace("A", 1);
  auto a1_again = sample_trace("A", 1);
  auto b = sample_trace("B", 2);
  cluster::ClusteringParams params = sample_params();

  // Deterministic: the same trace + params always derive the same key.
  EXPECT_EQ(FrameStore::key_for(*a1, params),
            FrameStore::key_for(*a1_again, params));
  EXPECT_EQ(FrameStore::key_for(*a1, params).size(), 32u);

  // Different content, different key.
  EXPECT_NE(FrameStore::key_for(*a1, params), FrameStore::key_for(*b, params));

  // Different clustering configuration, different key.
  cluster::ClusteringParams other = params;
  other.dbscan.eps = 0.1;
  EXPECT_NE(FrameStore::key_for(*a1, params), FrameStore::key_for(*a1, other));
}

TEST(FrameStoreTest, CorruptEntryIsMissPlusErrorAndIsDeleted) {
  fs::path dir = fresh_dir("corrupt");
  FrameStore store(config_for(dir));
  auto source = sample_trace("A", 1);
  cluster::ClusteringParams params = sample_params();
  cluster::Frame frame = cluster::build_frame(source, params);
  std::string key = FrameStore::key_for(*source, params);
  store.store(key, frame);

  // Truncate the entry on disk behind the store's back.
  fs::path entry = dir / (key + ".ptf");
  fs::resize_file(entry, 10);

  std::optional<cluster::Frame> back = store.load(key, source);
  EXPECT_FALSE(back.has_value());  // miss, not a failure
  EXPECT_EQ(store.stats().errors, 1u);
  EXPECT_EQ(store.stats().misses, 1u);
  EXPECT_FALSE(fs::exists(entry)) << "corrupt entry must be dropped";

  // Flipped-bit corruption behaves the same way.
  store.store(key, frame);
  {
    std::fstream f(entry, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(30);
    f.put('\x7f');
  }
  EXPECT_FALSE(store.load(key, source).has_value());
  EXPECT_EQ(store.stats().errors, 2u);
  EXPECT_FALSE(fs::exists(entry));

  // A healthy re-store recovers.
  store.store(key, frame);
  EXPECT_TRUE(store.load(key, source).has_value());
}

TEST(FrameStoreTest, LruCapEvictsOldestEntries) {
  fs::path dir = fresh_dir("lru");
  StoreConfig config = config_for(dir);
  auto source = sample_trace("A", 1);
  cluster::ClusteringParams params = sample_params();
  cluster::Frame frame = cluster::build_frame(source, params);
  const std::uint64_t entry_size = encode_frame(frame).size();

  // Room for roughly two entries.
  config.max_bytes = entry_size * 2 + entry_size / 2;
  FrameStore store(config);
  store.store("k1", frame);
  store.store("k2", frame);
  // Pin distinct ages so the LRU order is deterministic even on coarse
  // mtime filesystems.
  using namespace std::chrono_literals;
  auto now = fs::file_time_type::clock::now();
  fs::last_write_time(dir / "k1.ptf", now - 2h);
  fs::last_write_time(dir / "k2.ptf", now - 1h);
  store.store("k3", frame);
  EXPECT_GT(store.stats().evictions, 0u);

  std::uintmax_t total = 0;
  std::size_t entries = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    total += fs::file_size(e.path());
    ++entries;
  }
  EXPECT_LE(total, config.max_bytes);
  EXPECT_LT(entries, 3u);
  // The newest entry always survives.
  EXPECT_TRUE(fs::exists(dir / "k3.ptf"));
}

TEST(FrameStoreTest, UnwritableDirectoryIsDiagnosticNotFailure) {
  StoreConfig config;
  config.directory = "/proc/definitely/not/writable/pt_cache";
  FrameStore store(config);
  auto source = sample_trace("A", 1);
  cluster::Frame frame = cluster::build_frame(source, sample_params());
  // Must not throw: the caller already has the frame.
  EXPECT_NO_THROW(store.store("k", frame));
  EXPECT_EQ(store.stats().stores, 0u);
}

TEST(FrameStoreTest, RegularFileAsCacheDirDisablesStoreWithDiagnostic) {
  fs::path file = fs::path(::testing::TempDir()) / "pt_store_not_a_dir";
  fs::remove_all(file);
  { std::ofstream(file) << "occupied"; }
  StoreConfig config;
  config.directory = file.string();
  FrameStore store(config);
  // Diagnosed once at construction, then inert: no stores, no misses that
  // pretend the cache is live, and the file is left untouched.
  EXPECT_FALSE(store.enabled());
  EXPECT_EQ(store.stats().errors, 1u);
  auto source = sample_trace("A", 1);
  cluster::Frame frame = cluster::build_frame(source, sample_params());
  const std::string key = FrameStore::key_for(*source, sample_params());
  EXPECT_NO_THROW(store.store(key, frame));
  EXPECT_EQ(store.stats().stores, 0u);
  EXPECT_FALSE(store.load(key, source).has_value());
  EXPECT_EQ(store.stats().misses, 0u);
  EXPECT_TRUE(fs::is_regular_file(file));
  fs::remove_all(file);
}

TEST(FrameStoreTest, EnvironmentDirectoryReadsPerftrackCache) {
  ::setenv("PERFTRACK_CACHE", "/tmp/pt-env-cache", 1);
  EXPECT_EQ(FrameStore::environment_directory(), "/tmp/pt-env-cache");
  ::unsetenv("PERFTRACK_CACHE");
  EXPECT_EQ(FrameStore::environment_directory(), "");
}

// ---------------------------------------------------------------------------
// Crash injection on the write path (tmp + rename).

/// No visible cache entry and no .tmp-* litter may survive a failed store.
void expect_clean_cache_dir(const fs::path& dir, const std::string& key) {
  EXPECT_FALSE(fs::exists(dir / (key + ".ptf")))
      << "a failed store must not publish an entry";
  if (!fs::exists(dir)) return;
  for (const auto& item : fs::directory_iterator(dir))
    EXPECT_EQ(item.path().filename().string().rfind(".tmp-", 0),
              std::string::npos)
        << "tmp litter left behind: " << item.path();
}

class FrameStoreFailpointTest : public ::testing::Test {
protected:
  void SetUp() override { failpoint::clear(); }
  void TearDown() override { failpoint::clear(); }
};

TEST_F(FrameStoreFailpointTest, InjectedShortWriteCountsErrorAndLeavesNothing) {
  fs::path dir = fresh_dir("short_write");
  FrameStore store(config_for(dir));
  auto source = sample_trace("A", 1);
  cluster::Frame frame = cluster::build_frame(source, sample_params());
  const std::string key = FrameStore::key_for(*source, sample_params());

  failpoint::activate("frame_store_write", "@1");
  EXPECT_NO_THROW(store.store(key, frame));  // degraded, never fatal
  EXPECT_EQ(store.stats().errors, 1u);
  EXPECT_EQ(store.stats().stores, 0u);
  expect_clean_cache_dir(dir, key);
  // A later load is an honest miss, never a torn entry.
  EXPECT_FALSE(store.load(key, source).has_value());

  // The device recovered: the same store now succeeds and round-trips.
  store.store(key, frame);
  EXPECT_EQ(store.stats().stores, 1u);
  std::optional<cluster::Frame> back = store.load(key, source);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(encode_frame(*back), encode_frame(frame));
}

TEST_F(FrameStoreFailpointTest, InjectedRenameFailureCleansUpTheTemporary) {
  fs::path dir = fresh_dir("rename_fail");
  FrameStore store(config_for(dir));
  auto source = sample_trace("B", 2);
  cluster::Frame frame = cluster::build_frame(source, sample_params());
  const std::string key = FrameStore::key_for(*source, sample_params());

  failpoint::activate("frame_store_rename", "@1");
  EXPECT_NO_THROW(store.store(key, frame));
  EXPECT_EQ(store.stats().errors, 1u);
  expect_clean_cache_dir(dir, key);

  store.store(key, frame);
  EXPECT_TRUE(store.load(key, source).has_value());
}

TEST_F(FrameStoreFailpointTest, TrackingStaysCorrectWhenEveryStoreFails) {
  fs::path dir = fresh_dir("tracking_degraded");
  tracking::SessionConfig cached;
  cached.clustering = sample_params();
  cached.cache.directory = dir.string();
  tracking::SessionConfig uncached;
  uncached.clustering = sample_params();

  failpoint::activate("frame_store_write", "error");
  tracking::TrackingSession with_cache(cached);
  tracking::TrackingSession without_cache(uncached);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    auto t = sample_trace("run" + std::to_string(seed), seed);
    with_cache.append_experiment(t);
    without_cache.append_experiment(t);
  }
  const std::string degraded =
      tracking::describe_tracking(with_cache.retrack());
  failpoint::clear();

  EXPECT_GT(with_cache.stats().cache.errors, 0u);
  EXPECT_EQ(degraded, tracking::describe_tracking(without_cache.retrack()))
      << "a dying cache device must not change tracking results";
}

}  // namespace
}  // namespace perftrack::store
