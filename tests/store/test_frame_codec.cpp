#include "store/frame_codec.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>

#include "cluster/frame.hpp"
#include "common/error.hpp"
#include "testing/test_traces.hpp"

namespace perftrack::store {
namespace {

using perftrack::testing::MiniPhase;
using perftrack::testing::MiniTraceSpec;
using perftrack::testing::make_mini_trace;

std::shared_ptr<const trace::Trace> sample_trace(const std::string& label,
                                                 std::uint64_t seed) {
  MiniTraceSpec spec;
  spec.label = label;
  spec.seed = seed;
  spec.noise = 0.02;
  spec.phases = {MiniPhase{8e6, 1.0, {"p1", "x.c", 1}},
                 MiniPhase{1e6, 2.0, {"p2", "x.c", 2}},
                 MiniPhase{3e6, 0.7, {"p3", "y.c", 9}}};
  return make_mini_trace(spec);
}

cluster::ClusteringParams sample_params() {
  cluster::ClusteringParams params;
  params.dbscan.eps = 0.08;
  params.dbscan.min_pts = 3;
  params.log_scale = {true, false};
  params.min_cluster_time_fraction = 0.001;
  return params;
}

cluster::Frame sample_frame(const std::string& label = "codec",
                            std::uint64_t seed = 7) {
  return cluster::build_frame(sample_trace(label, seed), sample_params());
}

/// Bit-level equality over every field a Frame exposes.
void expect_frames_equal(const cluster::Frame& a, const cluster::Frame& b) {
  EXPECT_EQ(a.label(), b.label());
  EXPECT_EQ(a.num_tasks(), b.num_tasks());
  EXPECT_EQ(a.projection().metrics, b.projection().metrics);
  ASSERT_EQ(a.projection().points.size(), b.projection().points.size());
  ASSERT_EQ(a.projection().points.dims(), b.projection().points.dims());
  {
    auto ra = a.projection().points.raw();
    auto rb = b.projection().points.raw();
    ASSERT_EQ(ra.size(), rb.size());
    EXPECT_EQ(std::memcmp(ra.data(), rb.data(), ra.size() * sizeof(double)),
              0)
        << "projection coordinates not bit-identical";
  }
  EXPECT_EQ(a.projection().burst_index, b.projection().burst_index);
  EXPECT_EQ(a.projection().durations, b.projection().durations);
  EXPECT_EQ(a.labels(), b.labels());
  ASSERT_EQ(a.object_count(), b.object_count());
  for (std::size_t o = 0; o < a.object_count(); ++o) {
    const cluster::ClusterObject& oa = a.objects()[o];
    const cluster::ClusterObject& ob = b.objects()[o];
    EXPECT_EQ(oa.id, ob.id);
    EXPECT_EQ(oa.rows, ob.rows);
    EXPECT_EQ(oa.centroid, ob.centroid);
    EXPECT_EQ(oa.metric_mean, ob.metric_mean);
    EXPECT_EQ(oa.callstack_weight, ob.callstack_weight);
    EXPECT_EQ(oa.total_duration, ob.total_duration);
  }
  EXPECT_EQ(a.task_sequences(), b.task_sequences());
  EXPECT_EQ(a.clustered_duration(), b.clustered_duration());
}

TEST(FrameCodecTest, RoundTripPreservesEveryField) {
  cluster::Frame frame = sample_frame();
  ASSERT_GT(frame.object_count(), 0u);
  std::string bytes = encode_frame(frame);
  cluster::Frame back = decode_frame(bytes, frame.source_ptr());
  expect_frames_equal(frame, back);
  // The reattached source is the caller's pointer, not a copy.
  EXPECT_EQ(&back.source(), &frame.source());
  // Round-tripping the decoded frame is byte-stable.
  EXPECT_EQ(encode_frame(back), bytes);
}

TEST(FrameCodecTest, RoundTripPreservesEmptyClustering) {
  // A frame where nothing clusters (eps so small everything is noise).
  cluster::ClusteringParams params = sample_params();
  params.dbscan.eps = 1e-12;
  params.dbscan.min_pts = 50;
  cluster::Frame frame =
      cluster::build_frame(sample_trace("empty", 3), params);
  EXPECT_EQ(frame.object_count(), 0u);
  cluster::Frame back =
      decode_frame(encode_frame(frame), frame.source_ptr());
  expect_frames_equal(frame, back);
}

TEST(FrameCodecTest, EveryTruncationIsParseError) {
  cluster::Frame frame = sample_frame();
  std::string bytes = encode_frame(frame);
  // Step through prefixes (every length near the header, sampled beyond) —
  // each must be a clean ParseError, never a crash or an allocation blowup.
  for (std::size_t cut = 0; cut < bytes.size();
       cut += (cut < 64 ? 1 : 37)) {
    EXPECT_THROW(decode_frame(std::string_view(bytes).substr(0, cut),
                              frame.source_ptr()),
                 ParseError)
        << "prefix length " << cut;
  }
}

TEST(FrameCodecTest, CorruptionCorpusAllRejected) {
  cluster::Frame frame = sample_frame();
  const std::string good = encode_frame(frame);
  auto expect_rejected = [&](std::string bytes, const std::string& what) {
    EXPECT_THROW(decode_frame(bytes, frame.source_ptr()), ParseError)
        << what;
  };

  {  // bad magic
    std::string bad = good;
    bad[0] = 'X';
    expect_rejected(bad, "bad magic");
  }
  {  // future format version
    std::string bad = good;
    bad[4] = 0x7f;
    expect_rejected(bad, "bad version");
  }
  {  // flipped payload bit -> checksum mismatch
    std::string bad = good;
    bad[bad.size() - 3] ^= 0x20;
    expect_rejected(bad, "payload bit flip");
  }
  {  // flipped checksum bit
    std::string bad = good;
    bad[9] ^= 0x01;
    expect_rejected(bad, "checksum bit flip");
  }
  {  // trailing garbage changes the payload size invariant
    std::string bad = good + "extra";
    expect_rejected(bad, "trailing bytes");
  }
  {  // payload-size field lies
    std::string bad = good;
    bad[16] = static_cast<char>(bad[16] + 1);
    expect_rejected(bad, "size field mismatch");
  }
  expect_rejected("", "empty input");
  expect_rejected("PTF1", "header only");
}

TEST(FrameCodecTest, DecodeRequiresSource) {
  cluster::Frame frame = sample_frame();
  std::string bytes = encode_frame(frame);
  EXPECT_THROW(decode_frame(bytes, nullptr), PreconditionError);
}

TEST(FrameCodecTest, ClusteringParamsEncodingIsCanonical) {
  cluster::ClusteringParams a = sample_params();
  cluster::ClusteringParams b = sample_params();
  EXPECT_EQ(encode_clustering_params(a), encode_clustering_params(b));

  // Every semantically meaningful knob moves the encoding...
  b.dbscan.eps = 0.09;
  EXPECT_NE(encode_clustering_params(a), encode_clustering_params(b));
  b = sample_params();
  b.dbscan.min_pts = 4;
  EXPECT_NE(encode_clustering_params(a), encode_clustering_params(b));
  b = sample_params();
  b.log_scale = {false, false};
  EXPECT_NE(encode_clustering_params(a), encode_clustering_params(b));
  b = sample_params();
  b.min_cluster_time_fraction = 0.0;
  EXPECT_NE(encode_clustering_params(a), encode_clustering_params(b));
  b = sample_params();
  b.collapse_sequence_runs = false;
  EXPECT_NE(encode_clustering_params(a), encode_clustering_params(b));
  b = sample_params();
  b.projection.time_coverage = 0.9;
  EXPECT_NE(encode_clustering_params(a), encode_clustering_params(b));

  // ...but the DBSCAN index engine does not: labels are engine-independent,
  // so kd-tree and grid runs share cache entries.
  b = sample_params();
  a.dbscan.index = cluster::DbscanIndex::kKdTree;
  b.dbscan.index = cluster::DbscanIndex::kGrid;
  EXPECT_EQ(encode_clustering_params(a), encode_clustering_params(b));
}

}  // namespace
}  // namespace perftrack::store
