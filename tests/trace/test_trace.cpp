#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace perftrack::trace {
namespace {

Burst burst_at(TaskId task, double begin, double duration = 0.1) {
  Burst b;
  b.task = task;
  b.begin_time = begin;
  b.duration = duration;
  return b;
}

TEST(TraceTest, RequiresAtLeastOneTask) {
  EXPECT_THROW(Trace("app", 0), PreconditionError);
}

TEST(TraceTest, LabelDefaultsToApplication) {
  Trace t("WRF", 4);
  EXPECT_EQ(t.label(), "WRF");
  t.set_label("WRF-128");
  EXPECT_EQ(t.label(), "WRF-128");
  EXPECT_EQ(t.application(), "WRF");
}

TEST(TraceTest, Attributes) {
  Trace t("app", 1);
  t.set_attribute("compiler", "xlf");
  EXPECT_EQ(t.attribute_or("compiler", "?"), "xlf");
  EXPECT_EQ(t.attribute_or("missing", "fallback"), "fallback");
  t.set_attribute("compiler", "ifort");  // overwrite
  EXPECT_EQ(t.attributes().at("compiler"), "ifort");
}

TEST(TraceTest, AddBurstValidatesTaskId) {
  Trace t("app", 2);
  EXPECT_THROW(t.add_burst(burst_at(2, 0.0)), PreconditionError);
}

TEST(TraceTest, AddBurstRejectsNegativeDuration) {
  Trace t("app", 1);
  EXPECT_THROW(t.add_burst(burst_at(0, 0.0, -1.0)), PreconditionError);
}

TEST(TraceTest, AddBurstEnforcesPerTaskTimeOrder) {
  Trace t("app", 2);
  t.add_burst(burst_at(0, 1.0));
  t.add_burst(burst_at(1, 0.5));  // other task: independent clock
  EXPECT_THROW(t.add_burst(burst_at(0, 0.5)), PreconditionError);
  t.add_burst(burst_at(0, 1.0));  // equal begin is allowed
}

TEST(TraceTest, TaskBurstsPreserveOrderAcrossInterleaving) {
  Trace t("app", 2);
  t.add_burst(burst_at(0, 0.0));
  t.add_burst(burst_at(1, 0.0));
  t.add_burst(burst_at(0, 1.0));
  t.add_burst(burst_at(1, 2.0));
  auto t0 = t.task_bursts(0);
  ASSERT_EQ(t0.size(), 2u);
  EXPECT_DOUBLE_EQ(t.bursts()[t0[0]].begin_time, 0.0);
  EXPECT_DOUBLE_EQ(t.bursts()[t0[1]].begin_time, 1.0);
  EXPECT_THROW(t.task_bursts(5), PreconditionError);
}

TEST(TraceTest, Totals) {
  Trace t("app", 2);
  t.add_burst(burst_at(0, 0.0, 0.5));
  t.add_burst(burst_at(1, 1.0, 0.25));
  EXPECT_DOUBLE_EQ(t.total_computation_time(), 0.75);
  EXPECT_DOUBLE_EQ(t.end_time(), 1.25);
  EXPECT_EQ(t.burst_count(), 2u);
}

TEST(TraceTest, ValidatePassesOnWellFormed) {
  Trace t("app", 2);
  t.callstacks().intern({"f", "x.c", 1});
  Burst b = burst_at(0, 0.0);
  b.callstack = 1;
  t.add_burst(b);
  EXPECT_NO_THROW(t.validate());
}

TEST(TraceTest, ValidateCatchesUnknownCallstack) {
  Trace t("app", 1);
  Burst b = burst_at(0, 0.0);
  b.callstack = 7;  // never interned
  t.add_burst(b);
  EXPECT_THROW(t.validate(), PreconditionError);
}

}  // namespace
}  // namespace perftrack::trace
