#include "trace/slice.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "testing/test_traces.hpp"

namespace perftrack::trace {
namespace {

using perftrack::testing::MiniPhase;
using perftrack::testing::MiniTraceSpec;
using perftrack::testing::make_mini_trace;

std::shared_ptr<const Trace> sample_trace() {
  MiniTraceSpec spec;
  spec.label = "run";
  spec.tasks = 3;
  spec.iterations = 8;
  spec.phases = {MiniPhase{2e6, 1.0, {"p1", "x.c", 1}},
                 MiniPhase{1e6, 2.0, {"p2", "x.c", 2}}};
  return make_mini_trace(spec);
}

TEST(SliceTest, RejectsZeroIntervals) {
  auto trace = sample_trace();
  EXPECT_THROW(split_into_intervals(*trace, 0), PreconditionError);
}

TEST(SliceTest, OneIntervalKeepsEverything) {
  auto trace = sample_trace();
  auto slices = split_into_intervals(*trace, 1);
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_EQ(slices[0]->burst_count(), trace->burst_count());
  EXPECT_EQ(slices[0]->label(), "run [1/1]");
}

TEST(SliceTest, BurstsArePartitioned) {
  auto trace = sample_trace();
  auto slices = split_into_intervals(*trace, 4);
  ASSERT_EQ(slices.size(), 4u);
  std::size_t total = 0;
  for (const auto& slice : slices) {
    total += slice->burst_count();
    slice->validate();
    EXPECT_EQ(slice->num_tasks(), trace->num_tasks());
  }
  EXPECT_EQ(total, trace->burst_count());
}

TEST(SliceTest, BurstsLandInTheirWindow) {
  auto trace = sample_trace();
  const std::size_t n = 4;
  auto slices = split_into_intervals(*trace, n);
  double width = trace->end_time() / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (const Burst& burst : slices[i]->bursts()) {
      double midpoint = burst.begin_time + burst.duration / 2.0;
      auto expected = std::min<std::size_t>(
          static_cast<std::size_t>(midpoint / width), n - 1);
      EXPECT_EQ(expected, i);
    }
  }
}

TEST(SliceTest, MetadataAndCallstacksSurvive) {
  MiniTraceSpec spec;
  spec.label = "run";
  spec.phases = {MiniPhase{2e6, 1.0, {"solve", "solver.c", 42}}};
  auto original = make_mini_trace(spec);
  auto mutable_copy = std::make_shared<Trace>(*original);
  mutable_copy->set_attribute("compiler", "xlf");
  auto slices = split_into_intervals(*mutable_copy, 2);
  for (const auto& slice : slices) {
    EXPECT_EQ(slice->attribute_or("compiler", ""), "xlf");
    EXPECT_FALSE(slice->attribute_or("interval", "").empty());
    for (const Burst& burst : slice->bursts())
      EXPECT_EQ(slice->callstacks().resolve(burst.callstack).function,
                "solve");
  }
}

TEST(SliceTest, EmptyWindowsAreAllowed) {
  // One burst spanning the whole run: its midpoint falls in the middle
  // window; the others are empty but well-formed.
  Trace t("app", 1);
  Burst b;
  b.duration = 0.1;
  t.add_burst(b);
  auto slices = split_into_intervals(t, 3);
  ASSERT_EQ(slices.size(), 3u);
  EXPECT_EQ(slices[0]->burst_count(), 0u);
  EXPECT_EQ(slices[1]->burst_count(), 1u);
  EXPECT_EQ(slices[2]->burst_count(), 0u);
  for (const auto& slice : slices) slice->validate();
}

}  // namespace
}  // namespace perftrack::trace
