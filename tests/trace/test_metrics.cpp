#include "trace/metrics.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace perftrack::trace {
namespace {

Burst make_burst(double instr, double cycles, double l1 = 0.0,
                 double l2 = 0.0, double tlb = 0.0) {
  Burst b;
  b.duration = 0.25;
  b.counters.set(Counter::Instructions, instr);
  b.counters.set(Counter::Cycles, cycles);
  b.counters.set(Counter::L1DMisses, l1);
  b.counters.set(Counter::L2Misses, l2);
  b.counters.set(Counter::TlbMisses, tlb);
  return b;
}

TEST(MetricTest, NamesRoundTrip) {
  for (std::size_t i = 0; i < kMetricCount; ++i) {
    auto m = static_cast<Metric>(i);
    EXPECT_EQ(metric_from_name(metric_name(m)), m);
  }
  EXPECT_THROW(metric_from_name("bogus"), ParseError);
}

TEST(MetricTest, ScalesWithTasksFlags) {
  EXPECT_TRUE(metric_scales_with_tasks(Metric::Instructions));
  EXPECT_TRUE(metric_scales_with_tasks(Metric::Cycles));
  EXPECT_TRUE(metric_scales_with_tasks(Metric::Duration));
  EXPECT_FALSE(metric_scales_with_tasks(Metric::Ipc));
  EXPECT_FALSE(metric_scales_with_tasks(Metric::L1MissesPerKi));
  EXPECT_FALSE(metric_scales_with_tasks(Metric::L2MissesPerKi));
  EXPECT_FALSE(metric_scales_with_tasks(Metric::TlbMissesPerKi));
}

TEST(MetricTest, EvaluateBasics) {
  Burst b = make_burst(2e6, 4e6, 1000.0, 200.0, 50.0);
  EXPECT_DOUBLE_EQ(evaluate_metric(b, Metric::Duration), 0.25);
  EXPECT_DOUBLE_EQ(evaluate_metric(b, Metric::Instructions), 2e6);
  EXPECT_DOUBLE_EQ(evaluate_metric(b, Metric::Cycles), 4e6);
  EXPECT_DOUBLE_EQ(evaluate_metric(b, Metric::Ipc), 0.5);
  EXPECT_DOUBLE_EQ(evaluate_metric(b, Metric::L1MissesPerKi), 0.5);
  EXPECT_DOUBLE_EQ(evaluate_metric(b, Metric::L2MissesPerKi), 0.1);
  EXPECT_DOUBLE_EQ(evaluate_metric(b, Metric::TlbMissesPerKi), 0.025);
}

TEST(MetricTest, DivisionGuards) {
  Burst zero_cycles = make_burst(1e6, 0.0);
  EXPECT_DOUBLE_EQ(evaluate_metric(zero_cycles, Metric::Ipc), 0.0);
  Burst zero_instr = make_burst(0.0, 1e6, 100.0, 100.0, 100.0);
  EXPECT_DOUBLE_EQ(evaluate_metric(zero_instr, Metric::L1MissesPerKi), 0.0);
  EXPECT_DOUBLE_EQ(evaluate_metric(zero_instr, Metric::L2MissesPerKi), 0.0);
  EXPECT_DOUBLE_EQ(evaluate_metric(zero_instr, Metric::TlbMissesPerKi), 0.0);
}

TEST(MetricTest, EvaluateWholeTrace) {
  Trace trace("app", 2);
  Burst b0 = make_burst(1e6, 2e6);
  b0.task = 0;
  trace.add_burst(b0);
  Burst b1 = make_burst(3e6, 3e6);
  b1.task = 1;
  trace.add_burst(b1);
  auto values = evaluate_metric(trace, Metric::Ipc);
  ASSERT_EQ(values.size(), 2u);
  EXPECT_DOUBLE_EQ(values[0], 0.5);
  EXPECT_DOUBLE_EQ(values[1], 1.0);
}

}  // namespace
}  // namespace perftrack::trace
