#include "trace/counters.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace perftrack::trace {
namespace {

TEST(CounterTest, NamesRoundTrip) {
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    auto c = static_cast<Counter>(i);
    EXPECT_EQ(counter_from_name(counter_name(c)), c);
  }
}

TEST(CounterTest, UnknownNameThrows) {
  EXPECT_THROW(counter_from_name("NOPE"), ParseError);
  EXPECT_THROW(counter_from_name(""), ParseError);
}

TEST(CounterSetTest, DefaultsToZero) {
  CounterSet set;
  for (std::size_t i = 0; i < kCounterCount; ++i)
    EXPECT_DOUBLE_EQ(set.get(static_cast<Counter>(i)), 0.0);
}

TEST(CounterSetTest, SetGetAdd) {
  CounterSet set;
  set.set(Counter::Instructions, 1e6);
  set.add(Counter::Instructions, 0.5e6);
  set.set(Counter::Cycles, 3e6);
  EXPECT_DOUBLE_EQ(set.get(Counter::Instructions), 1.5e6);
  EXPECT_DOUBLE_EQ(set.get(Counter::Cycles), 3e6);
  EXPECT_DOUBLE_EQ(set.get(Counter::L1DMisses), 0.0);
}

TEST(CounterSetTest, PlusEqualsIsElementWise) {
  CounterSet a, b;
  a.set(Counter::Instructions, 10.0);
  a.set(Counter::L2Misses, 1.0);
  b.set(Counter::Instructions, 5.0);
  b.set(Counter::TlbMisses, 2.0);
  a += b;
  EXPECT_DOUBLE_EQ(a.get(Counter::Instructions), 15.0);
  EXPECT_DOUBLE_EQ(a.get(Counter::L2Misses), 1.0);
  EXPECT_DOUBLE_EQ(a.get(Counter::TlbMisses), 2.0);
}

TEST(CounterSetTest, Equality) {
  CounterSet a, b;
  EXPECT_EQ(a, b);
  a.set(Counter::Cycles, 1.0);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace perftrack::trace
