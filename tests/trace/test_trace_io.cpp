#include "trace/trace_io.hpp"

#include <gtest/gtest.h>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace perftrack::trace {
namespace {

Trace make_rich_trace(std::uint64_t seed, std::uint32_t tasks,
                      int bursts_per_task) {
  perftrack::Rng rng(seed);
  Trace t("TestApp", tasks);
  t.set_label("TestApp-" + std::to_string(tasks));
  t.set_attribute("platform", "Reference");
  t.set_attribute("compiler", "gfortran");
  CallstackId cs1 = t.callstacks().intern({"solve it", "solver.f90", 42});
  CallstackId cs2 = t.callstacks().intern({"halo", "comm.f90", 7});
  for (std::uint32_t task = 0; task < tasks; ++task) {
    double clock = 0.0;
    for (int i = 0; i < bursts_per_task; ++i) {
      Burst b;
      b.task = task;
      b.begin_time = clock;
      b.duration = rng.uniform(0.001, 0.1);
      b.callstack = i % 2 == 0 ? cs1 : cs2;
      b.counters.set(Counter::Instructions, rng.uniform(1e5, 1e7));
      b.counters.set(Counter::Cycles, rng.uniform(1e5, 1e7));
      b.counters.set(Counter::L1DMisses, rng.uniform(0.0, 1e4));
      b.counters.set(Counter::L2Misses, rng.uniform(0.0, 1e3));
      b.counters.set(Counter::TlbMisses, rng.uniform(0.0, 1e2));
      t.add_burst(b);
      clock += b.duration + rng.uniform(0.0, 0.01);
    }
  }
  return t;
}

void expect_traces_equal(const Trace& a, const Trace& b) {
  EXPECT_EQ(a.application(), b.application());
  EXPECT_EQ(a.label(), b.label());
  EXPECT_EQ(a.num_tasks(), b.num_tasks());
  EXPECT_EQ(a.attributes(), b.attributes());
  ASSERT_EQ(a.burst_count(), b.burst_count());
  for (std::size_t i = 0; i < a.burst_count(); ++i) {
    const Burst& x = a.bursts()[i];
    const Burst& y = b.bursts()[i];
    EXPECT_EQ(x.task, y.task);
    EXPECT_DOUBLE_EQ(x.begin_time, y.begin_time);
    EXPECT_DOUBLE_EQ(x.duration, y.duration);
    EXPECT_EQ(a.callstacks().resolve(x.callstack),
              b.callstacks().resolve(y.callstack));
    EXPECT_EQ(x.counters, y.counters);
  }
}

class TraceIoRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceIoRoundTrip, WriteReadPreservesEverything) {
  Trace original = make_rich_trace(GetParam(), 3, 10);
  std::stringstream stream;
  write_trace(stream, original);
  Trace loaded = read_trace(stream);
  expect_traces_equal(original, loaded);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceIoRoundTrip,
                         ::testing::Values(1, 17, 23, 99));

TEST(TraceIoTest, FileRoundTrip) {
  Trace original = make_rich_trace(5, 2, 4);
  std::string path = ::testing::TempDir() + "/pt_trace_test.ptt";
  save_trace(path, original);
  Trace loaded = load_trace(path);
  expect_traces_equal(original, loaded);
  std::remove(path.c_str());
}

TEST(TraceIoTest, FunctionNamesWithSpacesSurvive) {
  Trace t("app", 1);
  CallstackId cs =
      t.callstacks().intern({"operator new [](unsigned long)", "mm.cpp", 1});
  Burst b;
  b.callstack = cs;
  t.add_burst(b);
  std::stringstream stream;
  write_trace(stream, t);
  Trace loaded = read_trace(stream);
  EXPECT_EQ(loaded.callstacks().resolve(loaded.bursts()[0].callstack).function,
            "operator new [](unsigned long)");
}

TEST(TraceIoTest, MissingMagicThrows) {
  std::stringstream stream("app foo\ntasks 1\n");
  EXPECT_THROW(read_trace(stream), ParseError);
}

TEST(TraceIoTest, MissingAppThrows) {
  std::stringstream stream("#PTT 1\ntasks 1\n");
  EXPECT_THROW(read_trace(stream), ParseError);
}

TEST(TraceIoTest, MissingTasksThrows) {
  std::stringstream stream("#PTT 1\napp foo\n");
  EXPECT_THROW(read_trace(stream), ParseError);
}

TEST(TraceIoTest, UnknownRecordThrows) {
  std::stringstream stream("#PTT 1\napp foo\ntasks 1\nwhatisthis 1 2\n");
  EXPECT_THROW(read_trace(stream), ParseError);
}

TEST(TraceIoTest, BadNumberThrows) {
  std::stringstream stream(
      "#PTT 1\napp foo\ntasks 1\nburst 0 zero 0.1 0 1 1 0 0 0\n");
  EXPECT_THROW(read_trace(stream), ParseError);
}

TEST(TraceIoTest, ShortBurstLineThrows) {
  std::stringstream stream("#PTT 1\napp foo\ntasks 1\nburst 0 0.0 0.1 0 1\n");
  EXPECT_THROW(read_trace(stream), ParseError);
}

TEST(TraceIoTest, UndeclaredCallstackThrows) {
  std::stringstream stream(
      "#PTT 1\napp foo\ntasks 1\nburst 0 0.0 0.1 9 1 1 0 0 0\n");
  EXPECT_THROW(read_trace(stream), ParseError);
}

TEST(TraceIoTest, CommentsAndBlanksIgnored) {
  std::stringstream stream(
      "#PTT 1\n\n# a comment\napp foo\ntasks 1\n\nburst 0 0.0 0.1 0 1 2 0 0 "
      "0\n");
  Trace t = read_trace(stream);
  EXPECT_EQ(t.burst_count(), 1u);
  EXPECT_DOUBLE_EQ(t.bursts()[0].counters.get(Counter::Cycles), 2.0);
}

TEST(TraceIoTest, LoadMissingFileThrows) {
  EXPECT_THROW(load_trace("/nonexistent-xyz/trace.ptt"), IoError);
}

}  // namespace
}  // namespace perftrack::trace
