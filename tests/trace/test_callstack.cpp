#include "trace/callstack.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace perftrack::trace {
namespace {

TEST(CallstackTableTest, UnknownSlotIsReserved) {
  CallstackTable table;
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.resolve(kUnknownCallstack).function, "<unknown>");
  EXPECT_EQ(table.describe(kUnknownCallstack), "<unknown>");
}

TEST(CallstackTableTest, InternDeduplicates) {
  CallstackTable table;
  SourceLocation loc{"solve", "solver.f90", 42};
  CallstackId a = table.intern(loc);
  CallstackId b = table.intern(loc);
  EXPECT_EQ(a, b);
  EXPECT_EQ(table.size(), 2u);
}

TEST(CallstackTableTest, DistinctLocationsGetDistinctIds) {
  CallstackTable table;
  CallstackId a = table.intern({"f", "x.c", 1});
  CallstackId b = table.intern({"f", "x.c", 2});   // different line
  CallstackId c = table.intern({"f", "y.c", 1});   // different file
  CallstackId d = table.intern({"g", "x.c", 1});   // different function
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  EXPECT_EQ(table.size(), 5u);
}

TEST(CallstackTableTest, ResolveRoundTrip) {
  CallstackTable table;
  SourceLocation loc{"advect", "module_comm_dm.f90", 2472};
  CallstackId id = table.intern(loc);
  EXPECT_EQ(table.resolve(id), loc);
  EXPECT_EQ(table.describe(id), "advect (module_comm_dm.f90:2472)");
}

TEST(CallstackTableTest, ResolveOutOfRangeThrows) {
  CallstackTable table;
  EXPECT_THROW(table.resolve(99), PreconditionError);
}

}  // namespace
}  // namespace perftrack::trace
