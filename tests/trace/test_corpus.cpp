// Golden-diagnostics tests over the corrupt-trace corpus: every corpus file
// must fail fast in strict mode and load with the expected structured
// diagnostics in lenient mode.

#include <gtest/gtest.h>

#include <string>

#include "common/diagnostics.hpp"
#include "common/error.hpp"
#include "trace/trace_io.hpp"

namespace perftrack::trace {
namespace {

std::string corpus_path(const std::string& name) {
  return std::string(PT_TEST_DATA_DIR) + "/trace/corpus/" + name;
}

Trace load_lenient(const std::string& name, Diagnostics& diags) {
  diags = Diagnostics::lenient();
  return load_trace(corpus_path(name), diags);
}

void expect_strict_rejects(const std::string& name) {
  EXPECT_THROW(load_trace(corpus_path(name)), ParseError) << name;
}

TEST(TraceCorpusTest, StrictModeRejectsEveryCorpusFile) {
  expect_strict_rejects("truncated.ptt");
  expect_strict_rejects("bad_magic.ptt");
  expect_strict_rejects("garbage_line.ptt");
  expect_strict_rejects("dangling_callstack.ptt");
  expect_strict_rejects("duplicate_ids.ptt");
}

TEST(TraceCorpusTest, TruncatedBurstIsSkipped) {
  Diagnostics diags;
  Trace t = load_lenient("truncated.ptt", diags);
  EXPECT_EQ(t.burst_count(), 4u);
  ASSERT_EQ(diags.error_count(), 1u);
  const Diagnostic& d = diags.entries().front();
  EXPECT_EQ(d.code, "bad-burst");
  EXPECT_EQ(d.line, 10);
  EXPECT_NE(d.file.find("truncated.ptt"), std::string::npos);
}

TEST(TraceCorpusTest, BadMagicIsReportedButBodyStillLoads) {
  Diagnostics diags;
  Trace t = load_lenient("bad_magic.ptt", diags);
  EXPECT_EQ(t.application(), "corpus-app");
  EXPECT_EQ(t.burst_count(), 4u);
  ASSERT_EQ(diags.error_count(), 1u);
  EXPECT_EQ(diags.entries().front().code, "bad-magic");
  EXPECT_EQ(diags.entries().front().line, 1);
}

TEST(TraceCorpusTest, GarbageLineIsSkipped) {
  Diagnostics diags;
  Trace t = load_lenient("garbage_line.ptt", diags);
  EXPECT_EQ(t.burst_count(), 4u);
  ASSERT_EQ(diags.error_count(), 1u);
  EXPECT_EQ(diags.entries().front().code, "unknown-record");
  EXPECT_EQ(diags.entries().front().line, 7);
}

TEST(TraceCorpusTest, DanglingCallstackDropsOnlyThatBurst) {
  Diagnostics diags;
  Trace t = load_lenient("dangling_callstack.ptt", diags);
  EXPECT_EQ(t.burst_count(), 3u);
  ASSERT_EQ(diags.error_count(), 1u);
  EXPECT_EQ(diags.entries().front().code, "dangling-callstack");
  EXPECT_EQ(diags.entries().front().line, 8);
}

TEST(TraceCorpusTest, DuplicateIdsKeepFirstAndWarn) {
  Diagnostics diags;
  Trace t = load_lenient("duplicate_ids.ptt", diags);
  EXPECT_TRUE(diags.ok());
  EXPECT_EQ(diags.warning_count(), 3u);
  EXPECT_EQ(t.application(), "corpus-app");
  EXPECT_EQ(t.attributes().at("platform"), "Reference");
  EXPECT_EQ(t.burst_count(), 4u);
  EXPECT_EQ(t.callstacks().resolve(t.bursts()[0].callstack).file, "solver.c");

  std::vector<std::string> codes;
  for (const Diagnostic& d : diags.entries()) codes.push_back(d.code);
  EXPECT_EQ(codes, (std::vector<std::string>{
                       "duplicate-record", "duplicate-attr",
                       "duplicate-callstack"}));
}

}  // namespace
}  // namespace perftrack::trace
