// GridNn must answer nearest() with the exact KdTree::nearest contract —
// closest point, ties broken by the lowest original index — for every
// input the displacement evaluator can produce. The cross-checks below
// pin it against both brute force and the kd-tree, including the
// adversarial shapes (duplicates, equidistant rings, collinear points,
// one-cell grids, far-outside queries) where a sloppy ring bound or a
// '>=' prune would silently pick a different, equally-near point.

#include "geom/grid_nn.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "geom/kdtree.hpp"

namespace perftrack::geom {
namespace {

PointSet random_points(std::size_t n, std::size_t dims, Rng& rng) {
  PointSet points(dims);
  std::vector<double> coords(dims);
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& c : coords) c = rng.uniform(0.0, 1.0);
    points.add(coords);
  }
  return points;
}

std::size_t brute_nearest(const PointSet& points,
                          std::span<const double> query) {
  std::size_t best = 0;
  double best_sq = 1e300;
  for (std::size_t i = 0; i < points.size(); ++i) {
    double d2 = squared_distance(query, points[i]);
    if (d2 < best_sq || (d2 == best_sq && i < best)) {
      best_sq = d2;
      best = i;
    }
  }
  return best;
}

TEST(GridNnTest, SinglePoint) {
  PointSet points(2, {0.5, 0.5});
  GridNn grid(points, 0.1);
  EXPECT_EQ(grid.size(), 1u);
  EXPECT_EQ(grid.nearest(std::vector<double>{0.0, 0.0}), 0u);
  EXPECT_EQ(grid.nearest(std::vector<double>{0.5, 0.5}), 0u);
}

TEST(GridNnTest, BuildVetoes) {
  // Empty and zero-dimensional clouds have nothing to index.
  EXPECT_EQ(GridNn::build(PointSet(2)), nullptr);
  EXPECT_EQ(GridNn::build(PointSet(0)), nullptr);
  // Above 3 dimensions the cell table outgrows its usefulness; the
  // evaluator falls back to the kd-tree.
  PointSet wide(4, {0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0});
  EXPECT_EQ(GridNn::build(wide), nullptr);
  // Non-finite coordinates make the spread unusable.
  PointSet inf(1, {0.0, std::numeric_limits<double>::infinity()});
  EXPECT_EQ(GridNn::build(inf), nullptr);
}

TEST(GridNnTest, BuildHandlesDuplicateOnlyCloud) {
  PointSet points(2);
  for (int i = 0; i < 10; ++i) points.add(std::vector<double>{0.3, 0.7});
  auto grid = GridNn::build(points);
  ASSERT_NE(grid, nullptr);
  EXPECT_EQ(grid->nearest(std::vector<double>{0.0, 0.0}), 0u);
}

TEST(GridNnTest, InvalidConstructionThrows) {
  PointSet points(2, {0.0, 0.0});
  EXPECT_THROW(GridNn(points, 0.0), PreconditionError);
  EXPECT_THROW(GridNn(points, -1.0), PreconditionError);
  // A cell table past kMaxCellCount fails loudly, like GridIndex.
  PointSet spread(2, {0.0, 0.0, 1e6, 1e6});
  EXPECT_THROW(GridNn(spread, 1e-4), PreconditionError);
}

TEST(GridNnTest, QueryErrors) {
  PointSet points(2, {0.0, 0.0});
  GridNn grid(points, 1.0);
  EXPECT_THROW(grid.nearest(std::vector<double>{0.0}), PreconditionError);
  GridNn empty(PointSet(2), 1.0);
  EXPECT_THROW(empty.nearest(std::vector<double>{0.0, 0.0}),
               PreconditionError);
}

TEST(GridNnTest, DuplicatePointsTieToLowestIndex) {
  PointSet points(2);
  for (int i = 0; i < 40; ++i) points.add(std::vector<double>{1.0, 1.0});
  GridNn grid(points, 0.25);
  EXPECT_EQ(grid.nearest(std::vector<double>{1.0, 1.0}), 0u);
  EXPECT_EQ(grid.nearest(std::vector<double>{0.0, 0.0}), 0u);
}

TEST(GridNnTest, EquidistantPointsAcrossCellsTieToLowestIndex) {
  // Four points exactly 0.25 from the query (offsets chosen to be exact
  // in binary), each in a different grid cell: the tie must go to index
  // 0 no matter which cell the ring walk reaches first.
  PointSet points(2);
  points.add(std::vector<double>{0.5, 0.75});   // above
  points.add(std::vector<double>{0.5, 0.25});   // below
  points.add(std::vector<double>{0.25, 0.5});   // left
  points.add(std::vector<double>{0.75, 0.5});   // right
  GridNn grid(points, 0.2);
  EXPECT_EQ(grid.nearest(std::vector<double>{0.5, 0.5}), 0u);
  KdTree tree(points);
  EXPECT_EQ(tree.nearest(std::vector<double>{0.5, 0.5}), 0u);
}

TEST(GridNnTest, EqualDistanceInFartherRingWinsOnLowerIndex) {
  // Index 0 lives one ring out; an equally-near (exact binary distance
  // 0.25) higher-index point shares the query's own cell. Stopping at
  // the ring-0 hit would return 1 — the walk must push one ring past the
  // current best before giving up on ties.
  PointSet points(1);
  points.add(std::vector<double>{0.5});  // ring 1 from query 0.25
  points.add(std::vector<double>{0.0});  // ring 0 from query 0.25
  GridNn grid(points, 0.3);
  EXPECT_EQ(grid.nearest(std::vector<double>{0.25}), 0u);
  KdTree tree(points);
  EXPECT_EQ(tree.nearest(std::vector<double>{0.25}), 0u);
}

TEST(GridNnTest, CollinearPoints) {
  PointSet points(2);
  for (int i = 0; i < 50; ++i)
    points.add(std::vector<double>{static_cast<double>(i) * 0.02, 0.5});
  GridNn grid(points, 0.1);
  Rng rng(7);
  for (int q = 0; q < 60; ++q) {
    std::vector<double> query{rng.uniform(-0.2, 1.2), rng.uniform(-0.2, 1.2)};
    EXPECT_EQ(grid.nearest(query), brute_nearest(points, query));
  }
}

TEST(GridNnTest, AllPointsInOneCell) {
  Rng rng(11);
  PointSet points = random_points(100, 2, rng);
  GridNn grid(points, 50.0);  // one cell swallows everything
  EXPECT_EQ(grid.cell_count(), 1u);
  for (int q = 0; q < 40; ++q) {
    std::vector<double> query{rng.uniform(-0.5, 1.5), rng.uniform(-0.5, 1.5)};
    EXPECT_EQ(grid.nearest(query), brute_nearest(points, query));
  }
}

TEST(GridNnTest, QueryFarOutsideBoxFallsBackExactly) {
  Rng rng(13);
  PointSet points = random_points(64, 2, rng);
  GridNn grid(points, 0.05);  // 1e5 away = millions of cells out
  for (double far : {1e5, -1e5, 1e12}) {
    std::vector<double> query{far, far};
    EXPECT_EQ(grid.nearest(query), brute_nearest(points, query));
  }
}

// Property tests: grid results must exactly match brute force and the
// kd-tree, for auto-sized and pathological explicit cell sizes.
struct GridNnCase {
  std::size_t n;
  std::size_t dims;
  std::uint64_t seed;
};

class GridNnProperty : public ::testing::TestWithParam<GridNnCase> {};

TEST_P(GridNnProperty, NearestMatchesBruteForceAndKdTree) {
  auto [n, dims, seed] = GetParam();
  Rng rng(seed);
  PointSet points = random_points(n, dims, rng);
  KdTree tree(points, /*leaf_size=*/4);
  auto auto_grid = GridNn::build(points);
  ASSERT_NE(auto_grid, nullptr);
  for (double cell : {0.03, 0.21, 10.0}) {
    GridNn grid(points, cell);
    for (int q = 0; q < 50; ++q) {
      std::vector<double> query(dims);
      for (auto& c : query) c = rng.uniform(-0.2, 1.2);
      const std::size_t expected = brute_nearest(points, query);
      EXPECT_EQ(grid.nearest(query), expected);
      EXPECT_EQ(auto_grid->nearest(query), expected);
      EXPECT_EQ(tree.nearest(query), expected);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, GridNnProperty,
    ::testing::Values(GridNnCase{1, 2, 1}, GridNnCase{2, 2, 2},
                      GridNnCase{17, 2, 3}, GridNnCase{100, 2, 4},
                      GridNnCase{500, 2, 5}, GridNnCase{100, 3, 6},
                      GridNnCase{999, 1, 8}));

TEST(GridNnTest, ClusteredDataMatchesKdTree) {
  // Clustered (non-uniform) data: most cells empty, a few dense — the
  // shape the displacement evaluator actually feeds the grid.
  Rng rng(55);
  PointSet points(2);
  for (int c = 0; c < 5; ++c) {
    double cx = rng.uniform(0.0, 1.0), cy = rng.uniform(0.0, 1.0);
    for (int i = 0; i < 60; ++i)
      points.add(std::vector<double>{cx + rng.normal(0.0, 0.01),
                                     cy + rng.normal(0.0, 0.01)});
  }
  auto grid = GridNn::build(points);
  ASSERT_NE(grid, nullptr);
  KdTree tree(points);
  for (int q = 0; q < 80; ++q) {
    std::vector<double> query{rng.uniform(-0.1, 1.1), rng.uniform(-0.1, 1.1)};
    EXPECT_EQ(grid->nearest(query), tree.nearest(query));
    EXPECT_EQ(grid->nearest(query), brute_nearest(points, query));
  }
}

}  // namespace
}  // namespace perftrack::geom
