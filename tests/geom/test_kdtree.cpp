#include "geom/kdtree.hpp"

#include <algorithm>
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace perftrack::geom {
namespace {

PointSet random_points(std::size_t n, std::size_t dims, Rng& rng) {
  PointSet points(dims);
  std::vector<double> coords(dims);
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& c : coords) c = rng.uniform(0.0, 1.0);
    points.add(coords);
  }
  return points;
}

std::size_t brute_nearest(const PointSet& points,
                          std::span<const double> query) {
  std::size_t best = 0;
  double best_sq = 1e300;
  for (std::size_t i = 0; i < points.size(); ++i) {
    double d2 = squared_distance(query, points[i]);
    if (d2 < best_sq || (d2 == best_sq && i < best)) {
      best_sq = d2;
      best = i;
    }
  }
  return best;
}

std::vector<std::size_t> brute_radius(const PointSet& points,
                                      std::span<const double> query,
                                      double radius) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < points.size(); ++i)
    if (squared_distance(query, points[i]) <= radius * radius)
      out.push_back(i);
  return out;
}

TEST(KdTreeTest, SinglePoint) {
  PointSet points(2, {0.5, 0.5});
  KdTree tree(points);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.nearest(std::vector<double>{0.0, 0.0}), 0u);
  EXPECT_DOUBLE_EQ(
      tree.nearest_squared_distance(std::vector<double>{0.5, 0.5}), 0.0);
}

TEST(KdTreeTest, EmptyTreeNearestThrows) {
  PointSet points(2);
  KdTree tree(points);
  EXPECT_THROW(tree.nearest(std::vector<double>{0.0, 0.0}),
               PreconditionError);
}

TEST(KdTreeTest, EmptyTreeRadiusIsEmpty) {
  PointSet points(2);
  KdTree tree(points);
  EXPECT_TRUE(tree.radius_query(std::vector<double>{0.0, 0.0}, 1.0).empty());
}

TEST(KdTreeTest, QueryDimensionMismatchThrows) {
  PointSet points(2, {0.0, 0.0});
  KdTree tree(points);
  EXPECT_THROW(tree.nearest(std::vector<double>{0.0}), PreconditionError);
  EXPECT_THROW(tree.radius_query(std::vector<double>{0.0, 0.0, 0.0}, 1.0),
               PreconditionError);
}

TEST(KdTreeTest, NegativeRadiusThrows) {
  PointSet points(2, {0.0, 0.0});
  KdTree tree(points);
  EXPECT_THROW(tree.radius_query(std::vector<double>{0.0, 0.0}, -0.1),
               PreconditionError);
}

TEST(KdTreeTest, DuplicatePoints) {
  PointSet points(2);
  for (int i = 0; i < 40; ++i) points.add(std::vector<double>{1.0, 1.0});
  KdTree tree(points);
  // Ties break to the lowest index.
  EXPECT_EQ(tree.nearest(std::vector<double>{1.0, 1.0}), 0u);
  auto all = tree.radius_query(std::vector<double>{1.0, 1.0}, 0.0);
  EXPECT_EQ(all.size(), 40u);
}

TEST(KdTreeTest, NearestTieBreaksToLowestIndexAcrossSplits) {
  // The grid NN engine promises byte-identical labels by reproducing this
  // exact rule, so it is pinned here adversarially: equidistant points
  // (exact binary distances) on BOTH sides of the root split, with the
  // lowest index placed on the far side, so a traversal that skips the
  // far subtree on an exact tie (diff*diff == best_sq) would miss it.
  PointSet points(2);
  points.add(std::vector<double>{0.75, 0.5});   // right of the query
  points.add(std::vector<double>{0.25, 0.5});   // left, same distance
  points.add(std::vector<double>{0.5, 0.75});
  points.add(std::vector<double>{0.5, 0.25});
  // Padding spreads the x-axis so it is the widest dim and splits at 0.5.
  points.add(std::vector<double>{0.0, 0.5});
  points.add(std::vector<double>{1.0, 0.5});
  KdTree tree(points, /*leaf_size=*/1);
  EXPECT_EQ(tree.nearest(std::vector<double>{0.5, 0.5}), 0u);
}

TEST(KdTreeTest, NearestTieBreaksToLowestIndexWithinLeaf) {
  // Interleaved duplicates of two equidistant locations in one leaf: the
  // winner must be the first point added, not the first one scanned in
  // any internal ordering.
  PointSet points(1);
  points.add(std::vector<double>{2.0});
  points.add(std::vector<double>{0.0});
  points.add(std::vector<double>{2.0});
  points.add(std::vector<double>{0.0});
  KdTree tree(points, /*leaf_size=*/8);
  EXPECT_EQ(tree.nearest(std::vector<double>{1.0}), 0u);
  EXPECT_EQ(tree.nearest(std::vector<double>{0.5}), 1u);
  EXPECT_EQ(tree.nearest(std::vector<double>{2.5}), 0u);
}

TEST(KdTreeTest, RadiusBoundaryInclusive) {
  PointSet points(1, {0.0, 1.0, 2.0});
  KdTree tree(points);
  auto hits = tree.radius_query(std::vector<double>{0.0}, 1.0);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], 0u);
  EXPECT_EQ(hits[1], 1u);
}

// Property tests: kd-tree results must exactly match brute force.
struct KdCase {
  std::size_t n;
  std::size_t dims;
  std::uint64_t seed;
};

class KdTreeProperty : public ::testing::TestWithParam<KdCase> {};

TEST_P(KdTreeProperty, NearestMatchesBruteForce) {
  auto [n, dims, seed] = GetParam();
  Rng rng(seed);
  PointSet points = random_points(n, dims, rng);
  KdTree tree(points, /*leaf_size=*/4);
  for (int q = 0; q < 50; ++q) {
    std::vector<double> query(dims);
    for (auto& c : query) c = rng.uniform(-0.2, 1.2);
    EXPECT_EQ(tree.nearest(query), brute_nearest(points, query));
  }
}

TEST_P(KdTreeProperty, RadiusMatchesBruteForce) {
  auto [n, dims, seed] = GetParam();
  Rng rng(seed + 1000);
  PointSet points = random_points(n, dims, rng);
  KdTree tree(points, /*leaf_size=*/4);
  for (double radius : {0.01, 0.1, 0.3, 2.0}) {
    for (int q = 0; q < 10; ++q) {
      std::vector<double> query(dims);
      for (auto& c : query) c = rng.uniform(0.0, 1.0);
      EXPECT_EQ(tree.radius_query(query, radius),
                brute_radius(points, query, radius));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, KdTreeProperty,
    ::testing::Values(KdCase{1, 2, 1}, KdCase{2, 2, 2}, KdCase{17, 2, 3},
                      KdCase{100, 2, 4}, KdCase{500, 2, 5},
                      KdCase{100, 3, 6}, KdCase{100, 5, 7},
                      KdCase{999, 1, 8}));

std::vector<std::size_t> brute_knn(const PointSet& points,
                                   std::span<const double> query,
                                   std::size_t k) {
  std::vector<std::size_t> indices(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) indices[i] = i;
  std::sort(indices.begin(), indices.end(),
            [&](std::size_t a, std::size_t b) {
              double da = squared_distance(query, points[a]);
              double db = squared_distance(query, points[b]);
              if (da != db) return da < db;
              return a < b;
            });
  indices.resize(std::min(k, indices.size()));
  return indices;
}

TEST_P(KdTreeProperty, KnnMatchesBruteForce) {
  auto [n, dims, seed] = GetParam();
  Rng rng(seed + 5000);
  PointSet points = random_points(n, dims, rng);
  KdTree tree(points, /*leaf_size=*/4);
  for (std::size_t k : {std::size_t{1}, std::size_t{5}, std::size_t{20}}) {
    for (int q = 0; q < 10; ++q) {
      std::vector<double> query(dims);
      for (auto& c : query) c = rng.uniform(0.0, 1.0);
      EXPECT_EQ(tree.k_nearest(query, k), brute_knn(points, query, k));
    }
  }
}

TEST(KdTreeTest, KnnClampsAndHandlesZero) {
  PointSet points(1, {0.0, 1.0, 2.0});
  KdTree tree(points);
  EXPECT_TRUE(tree.k_nearest(std::vector<double>{0.0}, 0).empty());
  auto all = tree.k_nearest(std::vector<double>{0.9}, 99);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0], 1u);  // 1.0 is nearest to 0.9
}

TEST(KdTreeTest, ClusteredDataNearest) {
  // Clustered (non-uniform) data exercises unbalanced splits.
  Rng rng(55);
  PointSet points(2);
  for (int c = 0; c < 5; ++c) {
    double cx = rng.uniform(0.0, 1.0), cy = rng.uniform(0.0, 1.0);
    for (int i = 0; i < 60; ++i)
      points.add(std::vector<double>{cx + rng.normal(0.0, 0.01),
                                     cy + rng.normal(0.0, 0.01)});
  }
  KdTree tree(points);
  for (int q = 0; q < 40; ++q) {
    std::vector<double> query{rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)};
    EXPECT_EQ(tree.nearest(query), brute_nearest(points, query));
  }
}

}  // namespace
}  // namespace perftrack::geom
