#include "geom/pointset.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace perftrack::geom {
namespace {

TEST(PointSetTest, AddAndAccess) {
  PointSet points(2);
  points.add(std::vector<double>{1.0, 2.0});
  points.add(std::vector<double>{3.0, 4.0});
  EXPECT_EQ(points.size(), 2u);
  EXPECT_EQ(points.dims(), 2u);
  EXPECT_DOUBLE_EQ(points[1][0], 3.0);
  EXPECT_DOUBLE_EQ(points[1][1], 4.0);
}

TEST(PointSetTest, RejectsDimensionMismatch) {
  PointSet points(2);
  EXPECT_THROW(points.add(std::vector<double>{1.0}), PreconditionError);
  EXPECT_THROW(points.add(std::vector<double>{1.0, 2.0, 3.0}),
               PreconditionError);
}

TEST(PointSetTest, RejectsUnconfiguredDims) {
  PointSet points;
  EXPECT_THROW(points.add(std::vector<double>{1.0}), PreconditionError);
}

TEST(PointSetTest, ConstructFromFlatData) {
  PointSet points(2, {1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0][1], 2.0);
  EXPECT_THROW(PointSet(2, {1.0, 2.0, 3.0}), PreconditionError);
  EXPECT_THROW(PointSet(0, {}), PreconditionError);
}

TEST(PointSetTest, MutablePoint) {
  PointSet points(2, {1.0, 2.0});
  points.mutable_point(0)[1] = 9.0;
  EXPECT_DOUBLE_EQ(points[0][1], 9.0);
}

TEST(PointSetTest, CornersAndCentroid) {
  PointSet points(2, {0.0, 10.0, 4.0, -2.0, 2.0, 4.0});
  auto lo = points.min_corner();
  auto hi = points.max_corner();
  auto c = points.centroid();
  EXPECT_DOUBLE_EQ(lo[0], 0.0);
  EXPECT_DOUBLE_EQ(lo[1], -2.0);
  EXPECT_DOUBLE_EQ(hi[0], 4.0);
  EXPECT_DOUBLE_EQ(hi[1], 10.0);
  EXPECT_DOUBLE_EQ(c[0], 2.0);
  EXPECT_DOUBLE_EQ(c[1], 4.0);
}

TEST(PointSetTest, EmptyCornersAreZero) {
  PointSet points(3);
  EXPECT_EQ(points.min_corner(), std::vector<double>(3, 0.0));
  EXPECT_EQ(points.max_corner(), std::vector<double>(3, 0.0));
  EXPECT_EQ(points.centroid(), std::vector<double>(3, 0.0));
}

TEST(DistanceTest, Euclidean) {
  std::vector<double> a{0.0, 0.0};
  std::vector<double> b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(squared_distance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(distance(a, a), 0.0);
}

}  // namespace
}  // namespace perftrack::geom
