#include "geom/grid_index.hpp"

#include <algorithm>
#include <gtest/gtest.h>
#include <set>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "geom/kdtree.hpp"

namespace perftrack::geom {
namespace {

PointSet random_points(std::size_t n, std::size_t dims, Rng& rng) {
  PointSet points(dims);
  std::vector<double> coords(dims);
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& c : coords) c = rng.uniform(0.0, 1.0);
    points.add(coords);
  }
  return points;
}

std::vector<std::size_t> brute_radius(const PointSet& points,
                                      std::span<const double> query,
                                      double radius) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < points.size(); ++i)
    if (squared_distance(query, points[i]) <= radius * radius)
      out.push_back(i);
  return out;
}

using Pair = std::pair<std::size_t, std::size_t>;

std::set<Pair> brute_pairs(const PointSet& points, double radius) {
  std::set<Pair> out;
  for (std::size_t i = 0; i < points.size(); ++i)
    for (std::size_t j = i + 1; j < points.size(); ++j)
      if (squared_distance(points[i], points[j]) <= radius * radius)
        out.insert({i, j});
  return out;
}

/// Collected pairs plus the invariant checks shared by every pair test:
/// i < j, and no pair visited twice.
std::set<Pair> collect_pairs(const GridIndex& grid, double radius) {
  std::set<Pair> seen;
  grid.for_each_pair_within(radius, [&](std::size_t i, std::size_t j) {
    EXPECT_LT(i, j);
    EXPECT_TRUE(seen.insert({i, j}).second)
        << "pair (" << i << ", " << j << ") visited twice";
  });
  return seen;
}

TEST(GridIndexTest, EmptySet) {
  PointSet points(2);
  GridIndex grid(points, 0.1);
  EXPECT_EQ(grid.size(), 0u);
  EXPECT_TRUE(grid.radius_query(std::vector<double>{0.5, 0.5}, 1.0).empty());
  int calls = 0;
  grid.for_each_pair_within(1.0, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(GridIndexTest, RejectsBadArguments) {
  PointSet points(2, {0.0, 0.0});
  EXPECT_THROW(GridIndex(points, 0.0), PreconditionError);
  GridIndex grid(points, 0.1);
  EXPECT_THROW(grid.radius_query(std::vector<double>{0.0}, 1.0),
               PreconditionError);
  EXPECT_THROW(grid.radius_query(std::vector<double>{0.0, 0.0}, -0.1),
               PreconditionError);
}

TEST(GridIndexTest, AllDuplicatePoints) {
  PointSet points(2);
  for (int i = 0; i < 40; ++i) points.add(std::vector<double>{1.0, 1.0});
  GridIndex grid(points, 0.05);
  // Radius zero still hits every duplicate, ascending.
  auto hits = grid.radius_query(std::vector<double>{1.0, 1.0}, 0.0);
  ASSERT_EQ(hits.size(), 40u);
  EXPECT_TRUE(std::is_sorted(hits.begin(), hits.end()));
  // Every unordered pair coincides, so all C(40, 2) come out exactly once.
  EXPECT_EQ(collect_pairs(grid, 0.0).size(), 40u * 39u / 2u);
}

TEST(GridIndexTest, CollinearPoints) {
  PointSet points(2);
  for (int i = 0; i < 50; ++i)
    points.add(std::vector<double>{0.02 * i, 0.5});
  GridIndex grid(points, 0.025);
  KdTree tree(points);
  for (double radius : {0.0, 0.02, 0.05, 0.3}) {
    for (int q = 0; q < 50; q += 7) {
      EXPECT_EQ(grid.radius_query(points[q], radius),
                tree.radius_query(points[q], radius));
    }
    EXPECT_EQ(collect_pairs(grid, radius), brute_pairs(points, radius));
  }
}

TEST(GridIndexTest, BoundaryExactlyAtRadiusIsInclusive) {
  // Matching KdTree's contract: distance == radius is a hit, even when the
  // candidate sits in a neighbouring cell.
  PointSet points(2, {0.0, 0.0, 0.025, 0.0, 0.05, 0.0});
  GridIndex grid(points, 0.025);
  auto hits = grid.radius_query(std::vector<double>{0.0, 0.0}, 0.025);
  EXPECT_EQ(hits, (std::vector<std::size_t>{0, 1}));
  auto pairs = collect_pairs(grid, 0.025);
  EXPECT_EQ(pairs, (std::set<Pair>{{0, 1}, {1, 2}}));
}

TEST(GridIndexTest, QueryOutsideTheDataBox) {
  PointSet points(2, {0.4, 0.4, 0.6, 0.6});
  GridIndex grid(points, 0.05);
  EXPECT_TRUE(
      grid.radius_query(std::vector<double>{-5.0, -5.0}, 0.5).empty());
  EXPECT_EQ(grid.radius_query(std::vector<double>{-5.0, -5.0}, 20.0).size(),
            2u);
}

TEST(GridIndexTest, ConstructorRejectsOverflowingCellTables) {
  // Widely spread data with a tiny cell would need ~1e21 cells per dim;
  // unchecked, the strides overflow and cell lookups go out of bounds.
  // The constructor must fail loudly instead.
  PointSet spread(2, {0.0, 0.0, 1e12, 1e12});
  EXPECT_THROW(GridIndex(spread, 1e-9), PreconditionError);
  // A ratio beyond the integer range (UB to cast unchecked) saturates and
  // is rejected the same way, by the constructor and the planner alike.
  PointSet extreme(1, {0.0, 1e300});
  EXPECT_THROW(GridIndex(extreme, 1e-300), PreconditionError);
  EXPECT_EQ(GridIndex::plan_cells(extreme, 1e-300, 1u << 20), 0u);
}

TEST(GridIndexTest, PlanCellsVetoesDegenerateConfigurations) {
  PointSet spread(2, {0.0, 0.0, 1e9, 1e9});
  EXPECT_EQ(GridIndex::plan_cells(spread, 0.01, 1u << 20), 0u);
  PointSet unit(2, {0.0, 0.0, 1.0, 1.0});
  std::size_t cells = GridIndex::plan_cells(unit, 0.1, 1u << 20);
  EXPECT_GT(cells, 0u);
  EXPECT_LE(cells, std::size_t{1} << 20);
  EXPECT_EQ(GridIndex::plan_cells(unit, 0.0, 1u << 20), 0u);
  EXPECT_EQ(GridIndex::plan_cells(PointSet(2), 0.1, 1u << 20), 1u);
}

TEST(GridIndexTest, ReachableCellsSeeEveryNonEmptyNeighbour) {
  // Two occupied cells far apart: within reach they see each other, beyond
  // reach they do not, and empty cells are never visited.
  PointSet points(1, {0.05, 0.95});
  GridIndex grid(points, 0.1);
  std::size_t cell_a = 0, cell_b = 0;
  for (std::size_t c = 0; c < grid.cell_count(); ++c) {
    for (std::uint32_t p : grid.bucket(c)) (p == 0 ? cell_a : cell_b) = c;
  }
  ASSERT_NE(cell_a, cell_b);
  std::vector<std::size_t> seen;
  grid.for_each_cell_in_reach(cell_a, 1.0,
                              [&](std::size_t c) { seen.push_back(c); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{cell_b}));
  seen.clear();
  grid.for_each_cell_in_reach(cell_a, 0.1,
                              [&](std::size_t c) { seen.push_back(c); });
  EXPECT_TRUE(seen.empty());
}

// Property tests: grid results must exactly match brute force and the
// kd-tree (same inclusive-boundary, ascending-order contract).
struct GridCase {
  std::size_t n;
  std::size_t dims;
  double cell;
  std::uint64_t seed;
};

class GridIndexProperty : public ::testing::TestWithParam<GridCase> {};

TEST_P(GridIndexProperty, RadiusMatchesBruteForceAndKdTree) {
  auto [n, dims, cell, seed] = GetParam();
  Rng rng(seed);
  PointSet points = random_points(n, dims, rng);
  GridIndex grid(points, cell);
  KdTree tree(points, /*leaf_size=*/4);
  for (double radius : {0.0, 0.01, 0.1, 0.3, 2.0}) {
    for (int q = 0; q < 10; ++q) {
      std::vector<double> query(dims);
      for (auto& c : query) c = rng.uniform(-0.2, 1.2);
      auto expected = brute_radius(points, query, radius);
      EXPECT_EQ(grid.radius_query(query, radius), expected);
      EXPECT_EQ(tree.radius_query(query, radius), expected);
    }
  }
}

TEST_P(GridIndexProperty, PairEnumerationMatchesBruteForce) {
  auto [n, dims, cell, seed] = GetParam();
  Rng rng(seed + 1000);
  PointSet points = random_points(n, dims, rng);
  GridIndex grid(points, cell);
  for (double radius : {0.01, 0.1, 0.5}) {
    EXPECT_EQ(collect_pairs(grid, radius), brute_pairs(points, radius));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, GridIndexProperty,
    ::testing::Values(GridCase{1, 2, 0.1, 1}, GridCase{2, 2, 0.1, 2},
                      GridCase{17, 2, 0.05, 3}, GridCase{100, 2, 0.025, 4},
                      GridCase{300, 2, 0.1, 5}, GridCase{100, 3, 0.2, 6},
                      GridCase{200, 1, 0.01, 7},
                      // Cells far larger / smaller than the radii.
                      GridCase{100, 2, 1.0, 8}, GridCase{60, 2, 0.004, 9}));

}  // namespace
}  // namespace perftrack::geom
