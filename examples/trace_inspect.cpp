// Trace round-trip and inspection: serialise an experiment to the .ptt
// text format, load it back, and summarise its structure.
//
// Usage:
//   ./examples/trace_inspect             # generate, save, reload a sample
//   ./examples/trace_inspect FILE.ptt    # inspect an existing trace file

#include <cstdio>
#include <iostream>
#include <map>

#include "cluster/frame.hpp"
#include "cluster/scatter.hpp"
#include "common/strings.hpp"
#include "sim/apps/apps.hpp"
#include "sim/studies.hpp"
#include "trace/trace_io.hpp"

using namespace perftrack;

int main(int argc, char** argv) {
  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    // No input: produce a sample trace first.
    path = "hydroc_sample.ptt";
    sim::AppModel app = sim::make_hydroc();
    sim::Scenario scenario;
    scenario.label = "HydroC sample";
    scenario.num_tasks = 8;
    scenario.block_kb = 32.0;
    scenario.platform = sim::minotauro();
    trace::save_trace(path, app.simulate(scenario));
    std::printf("wrote sample trace to %s\n", path.c_str());
  }

  trace::Trace trace = trace::load_trace(path);
  trace.validate();

  std::printf("application : %s\n", trace.application().c_str());
  std::printf("label       : %s\n", trace.label().c_str());
  std::printf("tasks       : %u\n", trace.num_tasks());
  for (const auto& [key, value] : trace.attributes())
    std::printf("attr %-12s %s\n", key.c_str(), value.c_str());
  std::printf("bursts      : %zu\n", trace.burst_count());
  std::printf("compute time: %.3fs across tasks, ends at %.3fs\n",
              trace.total_computation_time(), trace.end_time());

  // Time per source location.
  std::map<trace::CallstackId, double> time_by_location;
  for (const auto& burst : trace.bursts())
    time_by_location[burst.callstack] += burst.duration;
  std::printf("\ntime by code region:\n");
  for (const auto& [cs, seconds] : time_by_location)
    std::printf("  %-45s %8.3fs\n",
                trace.callstacks().describe(cs).c_str(), seconds);

  // Cluster it and draw the frame.
  auto shared = std::make_shared<const trace::Trace>(std::move(trace));
  cluster::ClusteringParams params = sim::default_clustering();
  cluster::Frame frame = cluster::build_frame(shared, params);
  std::printf("\n%zu behavioural clusters:\n", frame.object_count());
  for (const auto& object : frame.objects())
    std::printf("  cluster %d: %5zu bursts, %s instructions, IPC %.2f\n",
                object.id + 1, object.size(),
                format_si(object.centroid[0]).c_str(), object.centroid[1]);
  cluster::ScatterOptions options;
  options.x_axis = 1;
  options.y_axis = 0;
  options.log_y = true;
  std::cout << "\n" << cluster::ascii_scatter(frame, options);
  return 0;
}
