// Resource-sharing study: what does co-locating tasks on a node cost?
// (The paper's §4.3, generalised.)
//
// Runs the same 12-task job under every placement from one task per node
// to a fully packed node, and correlates the per-region IPC against the
// cache/TLB counters to show *why* it degrades.
//
// Build and run:  ./examples/resource_sharing_study

#include <cstdio>
#include <iostream>

#include "sim/apps/apps.hpp"
#include "tracking/pipeline.hpp"
#include "tracking/report.hpp"
#include "tracking/trends.hpp"

using namespace perftrack;

int main() {
  sim::AppModel app = sim::make_mrgenesis();

  tracking::TrackingPipeline pipeline;
  for (std::uint32_t per_node = 1; per_node <= 12; ++per_node) {
    sim::Scenario scenario;
    scenario.label = std::to_string(per_node) + "/node";
    scenario.num_tasks = 12;
    scenario.tasks_per_node = per_node;
    scenario.platform = sim::minotauro();
    scenario.seed = 40 + per_node;
    pipeline.add_experiment(app.simulate_shared(scenario));
  }
  tracking::SessionConfig config = pipeline.config();
  config.clustering.dbscan.eps = 0.08;
  pipeline.set_config(config);

  tracking::TrackingResult result = pipeline.run();

  std::vector<std::string> labels;
  for (const auto& frame : result.frames) labels.push_back(frame.label());

  for (const auto& region : result.regions) {
    if (!region.complete) continue;
    auto ipc =
        tracking::region_metric_mean(result, region.id, trace::Metric::Ipc);
    std::printf("Region %d: IPC %.2f alone -> %.2f packed (%.1f%%)\n",
                region.id + 1, ipc.front(), ipc.back(),
                (ipc.back() / ipc.front() - 1.0) * 100.0);
  }

  // Correlate all metrics of the dominant region, each relative to its
  // maximum — the paper's Fig. 11b view.
  const auto& region = result.regions.front();
  std::vector<tracking::TrendSeries> series{
      {"IPC", tracking::relative_to_max(tracking::region_metric_mean(
                  result, region.id, trace::Metric::Ipc))},
      {"L2/Ki", tracking::relative_to_max(tracking::region_metric_mean(
                    result, region.id, trace::Metric::L2MissesPerKi))},
      {"TLB/Ki", tracking::relative_to_max(tracking::region_metric_mean(
                     result, region.id, trace::Metric::TlbMissesPerKi))},
  };
  tracking::TrendChartOptions chart;
  chart.y_label = "fraction of metric maximum (region 1)";
  std::cout << "\n" << tracking::trend_chart(series, labels, chart);
  std::printf(
      "\nThe IPC loss tracks the growth of L2/TLB misses: co-located tasks\n"
      "compete for shared cache and memory bandwidth. Placement is free —\n"
      "this chart tells you what the last 4 tasks per node cost.\n");
  return 0;
}
