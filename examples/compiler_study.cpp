// Compiler/platform study: how do vendor compilers change an application's
// behaviour — and does it actually run faster? (The paper's §4.1.)
//
// Demonstrates building a custom application model from scratch: a small
// conjugate-gradient solver with a matvec and a halo exchange, run under
// four (platform, compiler) combinations, then tracked.
//
// Build and run:  ./examples/compiler_study

#include <cstdio>
#include <iostream>

#include "common/strings.hpp"
#include "sim/app.hpp"
#include "tracking/pipeline.hpp"
#include "tracking/report.hpp"
#include "tracking/trends.hpp"

using namespace perftrack;

namespace {

sim::AppModel make_solver() {
  sim::AppModel app("toy-cg", /*ref_tasks=*/64.0, /*default_iterations=*/30);
  {
    sim::PhaseSpec matvec;
    matvec.name = "matvec";
    matvec.location = {"matvec", "solver.f90", 120};
    matvec.base_instructions = 5e6;
    matvec.base_ipc = 0.9;
    matvec.working_set_kb = 24.0;
    matvec.repeats = 2;
    app.add_phase(matvec);
  }
  {
    sim::PhaseSpec halo;
    halo.name = "halo_update";
    halo.location = {"halo_update", "comm.f90", 88};
    halo.base_instructions = 1.2e6;
    halo.base_ipc = 0.55;
    halo.working_set_kb = 8.0;
    app.add_phase(halo);
  }
  return app;
}

}  // namespace

int main() {
  sim::AppModel solver = make_solver();

  tracking::TrackingPipeline pipeline;
  struct Config {
    sim::Platform platform;
    sim::CompilerModel compiler;
  };
  for (const Config& config :
       {Config{sim::marenostrum(), sim::gfortran()},
        Config{sim::marenostrum(), sim::xlf()},
        Config{sim::minotauro(), sim::gfortran()},
        Config{sim::minotauro(), sim::ifort()}}) {
    sim::Scenario scenario;
    scenario.label = config.platform.name + "/" + config.compiler.name;
    scenario.num_tasks = 64;
    scenario.platform = config.platform;
    scenario.compiler = config.compiler;
    pipeline.add_experiment(solver.simulate_shared(scenario));
  }

  tracking::TrackingResult result = pipeline.run();
  std::cout << tracking::describe_tracking(result) << "\n";

  std::printf("%-28s %12s %10s %12s\n", "experiment", "instructions", "IPC",
              "region time");
  for (const auto& region : result.regions) {
    if (!region.complete) continue;
    auto instr = tracking::region_metric_mean(result, region.id,
                                              trace::Metric::Instructions);
    auto ipc =
        tracking::region_metric_mean(result, region.id, trace::Metric::Ipc);
    auto time = tracking::region_duration_total(result, region.id);
    std::printf("Region %d\n", region.id + 1);
    for (std::size_t f = 0; f < result.frames.size(); ++f)
      std::printf("  %-26s %12s %10.3f %11.3fs\n",
                  result.frames[f].label().c_str(),
                  format_si(instr[f]).c_str(), ipc[f], time[f]);
  }
  std::printf(
      "\nTakeaway: a vendor compiler that removes a third of the\n"
      "instructions at a third less IPC buys you nothing — compare the\n"
      "region times, not the instruction counts.\n");
  return 0;
}
