// Evolution study: tracking behaviour *within one experiment* (§1, §6:
// "different time intervals within the same experiment").
//
// Simulates one long molecular-dynamics run whose neighbour lists slowly
// grow and whose PME performance drifts, slices the single trace into 10
// wall-clock intervals, and tracks the regions across them. Also writes an
// animated HTML report — the paper's "simple animation" of Fig. 6.
//
// Build and run:  ./examples/evolution_study

#include <cstdio>
#include <iostream>

#include "sim/apps/apps.hpp"
#include "trace/slice.hpp"
#include "tracking/html_report.hpp"
#include "tracking/pipeline.hpp"
#include "tracking/report.hpp"
#include "tracking/trends.hpp"

using namespace perftrack;

int main() {
  // One long run: simulate drift by chaining short scenarios in time and
  // concatenating them into a single trace, then slice it back.
  sim::AppModel app = sim::make_gromacs(true);
  trace::Trace run("Gromacs", 32);
  run.set_label("Gromacs production run");
  double clock_offset = 0.0;
  for (int segment = 0; segment < 10; ++segment) {
    sim::Scenario scenario;
    scenario.num_tasks = 32;
    scenario.problem_scale = 1.0 + 0.05 * segment;  // slow drift
    scenario.platform = sim::minotauro();
    scenario.seed = 500 + static_cast<std::uint64_t>(segment);
    scenario.iterations = 4;
    trace::Trace part = app.simulate(scenario);
    for (const trace::Burst& burst : part.bursts()) {
      trace::Burst shifted = burst;
      shifted.begin_time += clock_offset;
      shifted.callstack = run.callstacks().intern(
          part.callstacks().resolve(burst.callstack));
      run.add_burst(shifted);
    }
    clock_offset += part.end_time();
  }
  std::printf("one run: %zu bursts over %.2fs\n", run.burst_count(),
              run.end_time());

  // Slice into intervals and track the sequence.
  auto slices = trace::split_into_intervals(run, 10);
  tracking::TrackingPipeline pipeline;
  for (auto& slice : slices) pipeline.add_experiment(slice);
  tracking::TrackingResult result = pipeline.run();

  std::cout << tracking::describe_tracking(result) << "\n";
  for (const auto& region : result.regions) {
    if (!region.complete) continue;
    auto instr = tracking::region_metric_mean(result, region.id,
                                              trace::Metric::Instructions);
    double growth = instr.back() / instr.front() - 1.0;
    std::printf("Region %d: per-burst instructions %+.1f%% over the run%s\n",
                region.id + 1, growth * 100.0,
                growth > 0.10 ? "  <- growing phase" : "");
  }

  tracking::HtmlReportOptions html;
  html.title = "Gromacs production run — behaviour evolution";
  tracking::save_html_report("gromacs_evolution.html", result, html);
  std::printf("\nanimated report written to gromacs_evolution.html\n");
  return 0;
}
