// Quickstart: track how an application's behaviour evolves when the
// process count doubles.
//
// Demonstrates the core API in ~40 effective lines:
//   1. obtain traces (here: simulated; in production, load .ptt files),
//   2. feed them to a TrackingPipeline,
//   3. read back tracked regions, relations and per-region trends.
//
// Build and run:  ./examples/quickstart

#include <cstdio>
#include <iostream>

#include "sim/apps/apps.hpp"
#include "tracking/pipeline.hpp"
#include "tracking/report.hpp"
#include "tracking/trends.hpp"

using namespace perftrack;

int main() {
  // 1. Two experiments: the same weather model at 128 and 256 tasks.
  sim::AppModel wrf = sim::make_wrf();
  sim::Scenario at_128;
  at_128.label = "WRF-128";
  at_128.num_tasks = 128;
  at_128.platform = sim::marenostrum();
  sim::Scenario at_256 = at_128;
  at_256.label = "WRF-256";
  at_256.num_tasks = 256;

  // 2. Cluster each experiment into behavioural regions and track them.
  tracking::TrackingPipeline pipeline;
  pipeline.add_experiment(wrf.simulate_shared(at_128));
  pipeline.add_experiment(wrf.simulate_shared(at_256));

  tracking::SessionConfig config = pipeline.config();
  config.clustering.dbscan.eps = 0.025;
  config.clustering.min_cluster_time_fraction = 0.005;
  pipeline.set_config(config);

  tracking::TrackingResult result = pipeline.run();

  // 3. What corresponds to what, and how did it change?
  std::cout << tracking::describe_tracking(result) << "\n";
  std::cout << "IPC per region:\n"
            << tracking::trend_table(result, trace::Metric::Ipc).to_text(2);

  std::printf("\n%zu regions tracked across both experiments (coverage "
              "%.0f%%)\n",
              result.complete_count, result.coverage * 100.0);
  return 0;
}
