// Scalability study: which code regions stop scaling first?
//
// Tracks a stencil application across a 16 -> 256 task strong-scaling sweep
// (five experiments). A well-scaling region halves its per-task work at
// constant IPC; regions with replicated work or communication-bound inner
// loops drift away — the per-region trend lines expose exactly who.
//
// Build and run:  ./examples/scalability_study

#include <cstdio>
#include <iostream>

#include "common/strings.hpp"
#include "sim/app.hpp"
#include "tracking/pipeline.hpp"
#include "tracking/report.hpp"
#include "tracking/trends.hpp"

using namespace perftrack;

namespace {

sim::AppModel make_stencil() {
  sim::AppModel app("stencil3d", /*ref_tasks=*/16.0,
                    /*default_iterations=*/20);
  {
    sim::PhaseSpec compute;
    compute.name = "stencil_sweep";
    compute.location = {"sweep", "stencil.c", 210};
    compute.base_instructions = 30e6;
    compute.base_ipc = 1.4;
    compute.working_set_kb = 96.0;
    app.add_phase(compute);  // perfect strong scaling
  }
  {
    sim::PhaseSpec boundary;
    boundary.name = "boundary_pack";
    boundary.location = {"pack", "exchange.c", 55};
    boundary.base_instructions = 4e6;
    boundary.base_ipc = 0.8;
    boundary.working_set_kb = 16.0;
    // Surface-to-volume: boundary work shrinks slower than 1/tasks.
    boundary.instr_task_exp = -0.66;
    app.add_phase(boundary);
  }
  {
    sim::PhaseSpec reduce;
    reduce.name = "global_reduce";
    reduce.location = {"reduce", "reduce.c", 31};
    reduce.base_instructions = 1e6;
    reduce.base_ipc = 1.1;
    reduce.working_set_kb = 4.0;
    // log(p) replication: total work grows with the task count.
    reduce.instr_task_exp = -0.85;
    reduce.ipc_task_exp = -0.12;
    app.add_phase(reduce);
  }
  return app;
}

}  // namespace

int main() {
  sim::AppModel app = make_stencil();
  tracking::TrackingPipeline pipeline;
  for (std::uint32_t tasks : {16u, 32u, 64u, 128u, 256u}) {
    sim::Scenario scenario;
    scenario.label = std::to_string(tasks) + " tasks";
    scenario.num_tasks = tasks;
    scenario.platform = sim::minotauro();
    scenario.seed = 100 + tasks;
    pipeline.add_experiment(app.simulate_shared(scenario));
  }

  tracking::TrackingResult result = pipeline.run();
  std::cout << tracking::describe_tracking(result) << "\n";

  std::vector<std::string> labels;
  for (const auto& frame : result.frames) labels.push_back(frame.label());

  std::printf("total instructions per region (should be flat under perfect "
              "scaling):\n");
  std::vector<tracking::TrendSeries> series;
  for (const auto& region : result.regions) {
    if (!region.complete) continue;
    auto totals = tracking::relative_to_first(tracking::region_counter_total(
        result, region.id, trace::Counter::Instructions));
    series.push_back({"R" + std::to_string(region.id + 1), totals});
    std::printf("  Region %d: x%.2f total work at 16x the tasks (%s)\n",
                region.id + 1, totals.back(),
                totals.back() > 1.15 ? "replication!" : "scales");
  }
  tracking::TrendChartOptions chart;
  chart.y_label = "total instructions (vs 16 tasks)";
  std::cout << "\n" << tracking::trend_chart(series, labels, chart);
  return 0;
}
