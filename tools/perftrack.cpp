// perftrack — command-line front end.
//
// Track behavioural regions across experiments given as .ptt trace files,
// or across time intervals of a single experiment:
//
//   perftrack track   [options] A.ptt B.ptt [C.ptt ...]
//   perftrack evolve  [options] --intervals N RUN.ptt
//   perftrack inspect TRACE.ptt
//   perftrack stat    SOCKET [--watch [--interval SEC] [--count N]]
//   perftrack connect ENDPOINT [--call METHOD [--study S] [--params JSON]]
//
// `stat` talks to a running perftrackd over its unix socket and prints a
// live operational summary (qps, per-method p50/p99, cache hit ratio,
// queue depth) from the daemon's `stats` method; --watch refreshes it
// periodically.
//
// `connect` is the general-purpose protocol client: ENDPOINT is a unix
// socket path or "tcp://HOST:PORT" (a daemon started with --listen).
// With --call it sends one request and prints the response line; without
// it, it reads NDJSON request lines from stdin and prints each response
// line to stdout (a scriptable REPL). --retries/--deadline bound each
// roundtrip with the client's retry policy.
//
// Flags live in the cli::OptionTable below — the table generates the usage
// text, so run `perftrack` with no arguments for the current list.
//
// Exit codes: 0 success, 1 internal error, 2 usage, 3 parse failure,
// 4 I/O failure, 5 degraded success (lenient run completed, but with
// diagnostics or gaps — see docs/ROBUSTNESS.md).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "cli.hpp"
#include "cluster/scatter.hpp"
#include "common/diagnostics.hpp"
#include "common/error.hpp"
#include "obs/report.hpp"
#include "obs/telemetry.hpp"
#include "serve/client.hpp"
#include "sim/studies.hpp"
#include "store/frame_store.hpp"
#include "trace/slice.hpp"
#include "trace/trace_io.hpp"
#include "tracking/gnuplot.hpp"
#include "tracking/html_report.hpp"
#include "tracking/pipeline.hpp"
#include "tracking/report.hpp"

using namespace perftrack;

namespace {

// Exit codes (documented above and in docs/ROBUSTNESS.md).
constexpr int kExitOk = 0;
constexpr int kExitInternal = 1;
constexpr int kExitUsage = 2;
constexpr int kExitParse = 3;
constexpr int kExitIo = 4;
constexpr int kExitDegraded = 5;

struct Options {
  std::string command;
  std::vector<std::string> inputs;
  double eps = 0.025;
  std::size_t min_pts = 5;
  double min_cluster_frac = 0.005;
  std::size_t intervals = 8;
  std::string csv_path;
  std::string html_path;
  std::string gnuplot_base;
  std::string profile_path;
  std::string trace_events_path;
  bool matrices = false;
  bool scatter = false;
  bool lenient = false;
  bool no_cache = false;
  std::size_t max_errors = 100;
  bool watch = false;
  std::size_t watch_interval_sec = 2;
  std::size_t watch_count = 0;
  std::string call_method;
  std::string call_study;
  std::string call_params;
  std::size_t retries = 1;
  std::size_t deadline_ms = 0;
  store::StoreConfig cache;
  tracking::TrackingParams tracking;
};

/// The single source of truth for perftrack's flags: drives both parsing
/// and the usage text. Each numeric flag validates its operand here, so a
/// bad value is a usage error before any work starts.
cli::OptionTable option_table(Options& options) {
  cli::OptionTable table;
  table.tool = "perftrack";
  table.commands = {
      "track   [options] A.ptt B.ptt [...]",
      "evolve  [options] --intervals N RUN.ptt",
      "inspect [options] TRACE.ptt",
      "stat    SOCKET [--watch [--interval SEC] [--count N]]",
      "connect ENDPOINT [--call METHOD [--study S] [--params JSON]]",
  };
  table.footer =
      "exit codes: 0 ok, 1 error, 2 usage, 3 parse, 4 io,\n"
      "            5 degraded success (lenient, gaps/diagnostics)\n";
  auto* o = &options;
  table.add("--eps", "X", "DBSCAN radius in the normalised space (0.025)",
            [o](const std::string& v) {
              o->eps = cli::parse_double("--eps", v);
              if (o->eps <= 0.0)
                throw cli::UsageError("invalid value for --eps: '" + v +
                                      "' (must be positive)");
            });
  table.add("--min-pts", "N", "DBSCAN core threshold (5)",
            [o](const std::string& v) {
              o->min_pts = cli::parse_count("--min-pts", v, 1);
            });
  table.add("--min-cluster-frac", "F",
            "drop clusters below this time share (0.005)",
            [o](const std::string& v) {
              o->min_cluster_frac = cli::parse_double("--min-cluster-frac", v);
              if (o->min_cluster_frac < 0.0 || o->min_cluster_frac >= 1.0)
                throw cli::UsageError(
                    "invalid value for --min-cluster-frac: '" + v +
                    "' (must be in [0, 1))");
            });
  table.add("--intervals", "N", "time slices for evolve (8)",
            [o](const std::string& v) {
              o->intervals = cli::parse_count("--intervals", v, 2);
            });
  table.add("--csv", "FILE", "write per-region trends as CSV",
            [o](const std::string& v) { o->csv_path = v; });
  table.add("--html", "FILE",
            "write an animated HTML report (frames + trends)",
            [o](const std::string& v) { o->html_path = v; });
  table.add("--gnuplot", "BASE",
            "write BASE.{frames.dat,trends.dat,gp} for gnuplot",
            [o](const std::string& v) { o->gnuplot_base = v; });
  table.add_switch("--matrices",
                   "print the evaluator correlation matrices",
                   [o] { o->matrices = true; });
  table.add_switch("--scatter",
                   "print the tracked frames as ASCII scatter plots",
                   [o] { o->scatter = true; });
  table.add_switch("--no-spmd", "disable the SPMD structure heuristic",
                   [o] { o->tracking.use_spmd = false; });
  table.add_switch("--no-callstack", "disable the callstack heuristic",
                   [o] { o->tracking.use_callstack = false; });
  table.add_switch("--no-sequence", "disable the sequence heuristic",
                   [o] { o->tracking.use_sequence = false; });
  table.add_switch("--strict",
                   "abort on the first malformed record (default)",
                   [o] { o->lenient = false; });
  table.add_switch("--lenient",
                   "repair/skip malformed records under an error budget; "
                   "failed experiments become sequence gaps",
                   [o] { o->lenient = true; });
  table.add("--max-errors", "N",
            "lenient-mode error budget per input file (100)",
            [o](const std::string& v) {
              o->max_errors = cli::parse_count("--max-errors", v);
            });
  table.add("--threads", "N",
            "worker threads for clustering/tracking (default: hardware "
            "concurrency; 1 = serial, same output)",
            [o](const std::string& v) {
              o->tracking.threads = cli::parse_count("--threads", v);
            });
  table.add("--align-engine", "ENGINE",
            "pairwise alignment engine: auto | full | banded (auto; "
            "byte-identical output for every choice)",
            [o](const std::string& v) {
              auto engine = align::parse_alignment_engine(v);
              if (!engine)
                throw cli::UsageError(
                    "invalid value for --align-engine: '" + v +
                    "' (expected auto, full or banded)");
              o->tracking.alignment_engine = *engine;
            });
  table.add("--cache-dir", "DIR",
            "cache clustered frames in DIR (default: $PERFTRACK_CACHE)",
            [o](const std::string& v) { o->cache.directory = v; });
  table.add_switch("--no-cache",
                   "disable the frame cache even if PERFTRACK_CACHE is set",
                   [o] { o->no_cache = true; });
  table.add("--profile", "FILE",
            "record pipeline telemetry, write a JSON run report",
            [o](const std::string& v) { o->profile_path = v; });
  table.add("--trace-events", "FILE",
            "record telemetry as Chrome trace_event JSON (open in Perfetto "
            "/ chrome://tracing)",
            [o](const std::string& v) { o->trace_events_path = v; });
  table.add_switch("--watch", "stat: refresh the summary periodically",
                   [o] { o->watch = true; });
  table.add("--interval", "SEC", "stat --watch refresh period (2)",
            [o](const std::string& v) {
              o->watch_interval_sec = cli::parse_count("--interval", v, 1);
            });
  table.add("--count", "N",
            "stat --watch: stop after N refreshes (0 = forever)",
            [o](const std::string& v) {
              o->watch_count = cli::parse_count("--count", v);
            });
  table.add("--call", "METHOD", "connect: send one request and exit",
            [o](const std::string& v) { o->call_method = v; });
  table.add("--study", "NAME", "connect --call: the target study",
            [o](const std::string& v) { o->call_study = v; });
  table.add("--params", "JSON",
            "connect --call: params object to send with the request",
            [o](const std::string& v) { o->call_params = v; });
  table.add("--retries", "N",
            "connect: attempts per roundtrip, with backoff (1)",
            [o](const std::string& v) {
              o->retries = cli::parse_count("--retries", v, 1);
            });
  table.add("--deadline", "MS",
            "connect: per-attempt connect/send/recv deadline (0 = none)",
            [o](const std::string& v) {
              o->deadline_ms = cli::parse_count("--deadline", v);
            });
  return table;
}

int usage(const cli::OptionTable& table) {
  std::fputs(table.usage().c_str(), stderr);
  return kExitUsage;
}

/// Per-run ingestion state: every file's diagnostics plus gap bookkeeping,
/// so the end of the run can print one summary and pick the exit code.
struct IngestReport {
  std::size_t files = 0;
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t failed_files = 0;

  void absorb(const Diagnostics& diags) {
    ++files;
    errors += diags.error_count();
    warnings += diags.warning_count();
    if (!diags.empty()) std::fputs(diags.to_string().c_str(), stderr);
    if (!diags.ok())
      std::fprintf(stderr, "perftrack: %s\n", diags.summary().c_str());
  }

  bool degraded() const { return errors > 0 || failed_files > 0; }
};

ErrorBudget budget_of(const Options& options) {
  ErrorBudget budget;
  budget.max_errors = options.max_errors;
  return budget;
}

/// Load one trace honouring the strict/lenient mode. Lenient failures are
/// reported and recorded as a pipeline gap; strict failures propagate.
bool load_experiment(const Options& options, const std::string& path,
                     tracking::TrackingPipeline& pipeline,
                     IngestReport& ingest) {
  if (!options.lenient) {
    pipeline.add_experiment(
        std::make_shared<const trace::Trace>(trace::load_trace(path)));
    return true;
  }
  Diagnostics diags = Diagnostics::lenient(budget_of(options));
  try {
    auto loaded =
        std::make_shared<const trace::Trace>(trace::load_trace(path, diags));
    ingest.absorb(diags);
    pipeline.add_experiment(std::move(loaded));
    return true;
  } catch (const Error& error) {
    ingest.absorb(diags);
    ++ingest.failed_files;
    std::fprintf(stderr, "perftrack: skipping %s: %s\n", path.c_str(),
                 error.what());
    pipeline.add_gap(path, error.what());
    return false;
  }
}

/// The run configuration the flags describe, as one validated aggregate.
tracking::SessionConfig session_config(const Options& options) {
  tracking::SessionConfig config;
  config.clustering = sim::default_clustering();
  config.clustering.dbscan.eps = options.eps;
  config.clustering.dbscan.min_pts = options.min_pts;
  config.clustering.min_cluster_time_fraction = options.min_cluster_frac;
  config.tracking = options.tracking;
  config.resilience.lenient = options.lenient;
  if (!options.no_cache) config.cache = options.cache;
  return config;
}

int run_tracking(const Options& options,
                 tracking::TrackingPipeline& pipeline,
                 const IngestReport& ingest) {
  pipeline.set_config(session_config(options));

  tracking::TrackingResult result = pipeline.run();

  std::cout << tracking::describe_tracking(result) << "\n";
  std::cout << "IPC per region:\n"
            << tracking::trend_table(result, trace::Metric::Ipc).to_text(2)
            << "\n";

  if (options.matrices) {
    for (std::size_t p = 0; p < result.pairs.size(); ++p) {
      std::cout << "displacement " << result.frames[p].label() << " -> "
                << result.frames[p + 1].label() << ":\n"
                << result.pairs[p].displacement.a_to_b.to_text("A", "B")
                << "\ncallstack:\n"
                << result.pairs[p].callstack.to_text("A", "B") << "\n";
    }
  }
  if (options.scatter)
    std::cout << tracking::tracked_scatters(result) << "\n";
  if (!options.csv_path.empty()) {
    errno = 0;
    std::ofstream out(options.csv_path);
    if (!out) throw io_error("cannot open for writing", options.csv_path);
    out << tracking::trends_csv(result);
    std::printf("trends written to %s\n", options.csv_path.c_str());
  }
  if (!options.html_path.empty()) {
    tracking::save_html_report(options.html_path, result);
    std::printf("HTML report written to %s\n", options.html_path.c_str());
  }
  if (!options.gnuplot_base.empty()) {
    tracking::save_gnuplot(options.gnuplot_base, result);
    std::printf("gnuplot artefacts written to %s.{frames.dat,trends.dat,gp}\n",
                options.gnuplot_base.c_str());
  }

  // Degraded-success accounting: the run completed, but inputs were lost or
  // repaired along the way. Surface it in telemetry and the exit code.
  PT_COUNTER("parse_errors", static_cast<double>(ingest.errors));
  PT_COUNTER("parse_warnings", static_cast<double>(ingest.warnings));
  if (result.degraded() || ingest.degraded()) {
    std::fprintf(stderr,
                 "perftrack: degraded run: %zu of %zu experiments tracked, "
                 "%zu parse errors, %zu warnings\n",
                 result.frames.size(), result.sequence_length(),
                 ingest.errors, ingest.warnings);
    return kExitDegraded;
  }
  return kExitOk;
}

int cmd_track(const Options& options) {
  if (options.inputs.size() < 2) {
    std::fprintf(stderr, "track needs at least two trace files\n");
    return kExitUsage;
  }
  tracking::TrackingPipeline pipeline;
  IngestReport ingest;
  for (const std::string& path : options.inputs)
    load_experiment(options, path, pipeline, ingest);
  return run_tracking(options, pipeline, ingest);
}

int cmd_evolve(const Options& options) {
  if (options.inputs.size() != 1) {
    std::fprintf(stderr, "evolve needs exactly one trace file\n");
    return kExitUsage;
  }
  IngestReport ingest;
  Diagnostics diags = options.lenient
                          ? Diagnostics::lenient(budget_of(options))
                          : Diagnostics::strict();
  trace::Trace run = trace::load_trace(options.inputs[0], diags);
  if (options.lenient) ingest.absorb(diags);
  auto slices = trace::split_into_intervals(run, options.intervals);
  std::printf("split %s into %zu intervals\n", run.label().c_str(),
              slices.size());
  tracking::TrackingPipeline pipeline;
  for (auto& slice : slices) pipeline.add_experiment(std::move(slice));
  return run_tracking(options, pipeline, ingest);
}

int cmd_inspect(const Options& options) {
  if (options.inputs.size() != 1) {
    std::fprintf(stderr, "inspect needs exactly one trace file\n");
    return kExitUsage;
  }
  IngestReport ingest;
  Diagnostics diags = options.lenient
                          ? Diagnostics::lenient(budget_of(options))
                          : Diagnostics::strict();
  trace::Trace t = trace::load_trace(options.inputs[0], diags);
  if (options.lenient) ingest.absorb(diags);
  t.validate();
  std::printf("application %s, label %s, %u tasks, %zu bursts, %.3fs "
              "compute time\n",
              t.application().c_str(), t.label().c_str(), t.num_tasks(),
              t.burst_count(), t.total_computation_time());
  auto shared = std::make_shared<const trace::Trace>(std::move(t));
  cluster::ClusteringParams params = sim::default_clustering();
  params.dbscan.eps = options.eps;
  params.dbscan.min_pts = options.min_pts;
  cluster::Frame frame = cluster::build_frame(shared, params);
  std::printf("%zu behavioural clusters\n", frame.object_count());
  cluster::ScatterOptions scatter;
  scatter.x_axis = 1;
  scatter.y_axis = 0;
  scatter.log_y = true;
  std::cout << cluster::ascii_scatter(frame, scatter);
  return ingest.degraded() ? kExitDegraded : kExitOk;
}

// ---------------------------------------------------------------------------
// stat: live daemon summary over the NDJSON protocol

double json_number(const obs::JsonValue& object, const char* name) {
  return object.has(name) ? object.at(name).number : 0.0;
}

std::string fmt_ns(double ns) {
  char buffer[32];
  if (ns >= 1e9)
    std::snprintf(buffer, sizeof buffer, "%.2fs", ns / 1e9);
  else if (ns >= 1e6)
    std::snprintf(buffer, sizeof buffer, "%.1fms", ns / 1e6);
  else
    std::snprintf(buffer, sizeof buffer, "%.0fus", ns / 1e3);
  return buffer;
}

/// Total requests across the per-method latency section (the qps base).
double latency_total(const obs::JsonValue& stats) {
  if (!stats.has("latency")) return 0.0;
  double total = 0.0;
  for (const auto& [method, hist] : stats.at("latency").object)
    total += json_number(hist, "count");
  return total;
}

/// One rendered summary. `qps` < 0 means "no rate yet" (first sample).
void print_stat(const obs::JsonValue& stats, double qps) {
  const double uptime_s = json_number(stats, "uptime_ns") / 1e9;
  std::printf("perftrackd up %.1fs  studies %.0f (%.0f resident)%s\n",
              uptime_s, json_number(stats, "studies"),
              json_number(stats, "resident_sessions"),
              stats.has("draining") && stats.at("draining").boolean
                  ? "  DRAINING"
                  : "");
  std::printf("requests: appends %.0f  retracks %.0f  evictions %.0f",
              json_number(stats, "appends"),
              json_number(stats, "retracks"),
              json_number(stats, "evictions"));
  if (qps >= 0.0)
    std::printf("  qps %.1f", qps);
  std::printf("\n");
  if (stats.has("queue")) {
    const obs::JsonValue& queue = stats.at("queue");
    std::printf("queue: %.0f/%.0f in flight  %.0f admitted  %.0f rejected\n",
                json_number(queue, "in_flight"),
                json_number(queue, "capacity"),
                json_number(queue, "admitted"),
                json_number(queue, "rejected"));
  }
  if (stats.has("cache")) {
    const obs::JsonValue& cache = stats.at("cache");
    const double hits = json_number(cache, "hits");
    const double misses = json_number(cache, "misses");
    const double lookups = hits + misses;
    std::printf("cache: %.1f%% hit (%.0f hits, %.0f misses, %.0f stores)\n",
                lookups > 0 ? 100.0 * hits / lookups : 0.0, hits, misses,
                json_number(cache, "stores"));
  }
  if (stats.has("latency") && !stats.at("latency").object.empty()) {
    std::printf("%-20s %10s %10s %10s %10s\n", "method", "count", "p50",
                "p99", "max");
    for (const auto& [method, hist] : stats.at("latency").object)
      std::printf("%-20s %10.0f %10s %10s %10s\n", method.c_str(),
                  json_number(hist, "count"),
                  fmt_ns(json_number(hist, "p50_ns")).c_str(),
                  fmt_ns(json_number(hist, "p99_ns")).c_str(),
                  fmt_ns(json_number(hist, "max_ns")).c_str());
  }
  std::fflush(stdout);
}

int cmd_stat(const Options& options) {
  if (options.inputs.size() != 1) {
    std::fprintf(stderr, "stat needs the daemon's socket path\n");
    return kExitUsage;
  }
  serve::NdjsonClient client(options.inputs[0]);

  double prev_total = -1.0;
  std::size_t shown = 0;
  while (true) {
    serve::ClientResponse response = client.call("stats");
    if (!response.ok)
      throw Error("stats failed: " + response.error_code + ": " +
                  response.error_message);
    const double total = latency_total(response.result);
    // One-shot: rate since the daemon started; watch: rate over the
    // refresh interval.
    double qps = -1.0;
    if (prev_total >= 0.0) {
      qps = (total - prev_total) /
            static_cast<double>(options.watch_interval_sec);
    } else if (!options.watch) {
      const double uptime_s =
          json_number(response.result, "uptime_ns") / 1e9;
      if (uptime_s > 0.0) qps = total / uptime_s;
    }
    prev_total = total;

    if (options.watch && shown > 0) std::printf("\n");
    print_stat(response.result, qps);

    if (!options.watch) return kExitOk;
    ++shown;
    if (options.watch_count != 0 && shown >= options.watch_count)
      return kExitOk;
    std::this_thread::sleep_for(
        std::chrono::seconds(options.watch_interval_sec));
  }
}

// ---------------------------------------------------------------------------
// connect: scriptable protocol client (one-shot --call, or stdin REPL)

serve::RetryPolicy retry_policy(const Options& options) {
  serve::RetryPolicy retry;
  retry.attempts = static_cast<int>(options.retries);
  retry.deadline_ms = options.deadline_ms;
  return retry;
}

/// One request, one response line on stdout. The response is printed
/// verbatim (byte-identical to the wire), so the output composes with jq
/// and with the daemon's own NDJSON tooling. Exit code 1 when the daemon
/// answered with a protocol error.
int connect_call(const Options& options, serve::NdjsonClient& client) {
  obs::JsonWriter json;
  json.begin_object();
  json.key("method").value(options.call_method);
  if (!options.call_study.empty())
    json.key("study").value(options.call_study);
  json.end_object();
  std::string line = json.str();
  if (!options.call_params.empty())
    line.insert(line.size() - 1, ",\"params\":" + options.call_params);
  const std::string response = client.roundtrip(line);
  std::printf("%s\n", response.c_str());
  return serve::parse_client_response(response).ok ? kExitOk : kExitInternal;
}

/// REPL: every non-blank stdin line is sent as-is; every response line is
/// printed as-is. The exit code reports whether any request failed.
int connect_repl(const Options& options, serve::NdjsonClient& client) {
  (void)options;
  std::string line;
  bool any_error = false;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    const std::string response = client.roundtrip(line);
    std::printf("%s\n", response.c_str());
    std::fflush(stdout);
    if (!serve::parse_client_response(response).ok) any_error = true;
  }
  return any_error ? kExitInternal : kExitOk;
}

int cmd_connect(const Options& options) {
  if (options.inputs.size() != 1) {
    std::fprintf(stderr,
                 "connect needs one endpoint (socket path or "
                 "tcp://HOST:PORT)\n");
    return kExitUsage;
  }
  if (options.call_method.empty() &&
      (!options.call_study.empty() || !options.call_params.empty())) {
    std::fprintf(stderr, "--study/--params need --call METHOD\n");
    return kExitUsage;
  }
  serve::NdjsonClient client(options.inputs[0], retry_policy(options));
  return options.call_method.empty() ? connect_repl(options, client)
                                     : connect_call(options, client);
}

}  // namespace

// Write the requested telemetry sinks; the per-stage summary goes to
// stderr so the tracking output on stdout stays scriptable.
void emit_telemetry(const Options& options, int argc, char** argv) {
  obs::RunReport report = obs::collect();
  for (int i = 0; i < argc; ++i)
    report.label += (i ? " " : "") + std::string(argv[i]);
  if (!options.profile_path.empty()) {
    obs::save_report_json(options.profile_path, report);
    std::fprintf(stderr, "profile written to %s\n",
                 options.profile_path.c_str());
  }
  if (!options.trace_events_path.empty()) {
    obs::save_trace_events(options.trace_events_path);
    std::fprintf(stderr, "trace events written to %s\n",
                 options.trace_events_path.c_str());
  }
  std::fputs(obs::summary_table(report).c_str(), stderr);
}

int main(int argc, char** argv) {
  Options options;
  options.cache.directory = store::FrameStore::environment_directory();
  cli::OptionTable table = option_table(options);
  try {
    if (argc < 2) return usage(table);
    options.command = argv[1];
    table.parse(argc, argv, 2, options.inputs);

    const bool profiling =
        !options.profile_path.empty() || !options.trace_events_path.empty();
    if (profiling) obs::set_enabled(true);

    int rc = kExitUsage;
    if (options.command == "track") rc = cmd_track(options);
    else if (options.command == "evolve") rc = cmd_evolve(options);
    else if (options.command == "inspect") rc = cmd_inspect(options);
    else if (options.command == "stat") rc = cmd_stat(options);
    else if (options.command == "connect") rc = cmd_connect(options);
    else return usage(table);

    // A degraded success still produced a full result: emit its telemetry
    // so the run report records the gaps, diagnostics and cache counters.
    if (profiling && (rc == kExitOk || rc == kExitDegraded))
      emit_telemetry(options, argc, argv);
    return rc;
  } catch (const cli::UsageError& error) {
    std::fprintf(stderr, "perftrack: %s\n", error.what());
    return usage(table);
  } catch (const ParseError& error) {
    std::fprintf(stderr, "perftrack: parse error: %s\n", error.what());
    return kExitParse;
  } catch (const IoError& error) {
    std::fprintf(stderr, "perftrack: io error: %s\n", error.what());
    return kExitIo;
  } catch (const Error& error) {
    std::fprintf(stderr, "perftrack: %s\n", error.what());
    return kExitInternal;
  }
}
