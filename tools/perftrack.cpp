// perftrack — command-line front end.
//
// Track behavioural regions across experiments given as .ptt trace files,
// or across time intervals of a single experiment:
//
//   perftrack track   [options] A.ptt B.ptt [C.ptt ...]
//   perftrack evolve  [options] --intervals N RUN.ptt
//   perftrack inspect TRACE.ptt
//
// Options:
//   --eps X               DBSCAN radius in the normalised space (0.025)
//   --min-pts N           DBSCAN core threshold (5)
//   --min-cluster-frac F  drop clusters below this time share (0.005)
//   --csv FILE            write per-region trends as CSV
//   --html FILE           write an animated HTML report (frames + trends)
//   --gnuplot BASE        write BASE.{frames.dat,trends.dat,gp} for gnuplot
//   --matrices            print the evaluator correlation matrices
//   --scatter             print the tracked frames as ASCII scatter plots
//   --no-spmd / --no-callstack / --no-sequence   disable a heuristic
//   --profile FILE        record pipeline telemetry, write a JSON run report
//   --trace-events FILE   record telemetry as Chrome trace_event JSON
//                         (open in Perfetto / chrome://tracing)

#include <cstdio>
#include <cstring>
#include <iostream>
#include <fstream>
#include <string>
#include <vector>

#include "cluster/scatter.hpp"
#include "common/error.hpp"
#include "obs/report.hpp"
#include "obs/telemetry.hpp"
#include "sim/studies.hpp"
#include "trace/slice.hpp"
#include "trace/trace_io.hpp"
#include "tracking/gnuplot.hpp"
#include "tracking/html_report.hpp"
#include "tracking/pipeline.hpp"
#include "tracking/report.hpp"

using namespace perftrack;

namespace {

struct Options {
  std::string command;
  std::vector<std::string> inputs;
  double eps = 0.025;
  std::size_t min_pts = 5;
  double min_cluster_frac = 0.005;
  std::size_t intervals = 8;
  std::string csv_path;
  std::string html_path;
  std::string gnuplot_base;
  std::string profile_path;
  std::string trace_events_path;
  bool matrices = false;
  bool scatter = false;
  tracking::TrackingParams tracking;
};

int usage() {
  std::fprintf(stderr,
               "usage: perftrack track   [options] A.ptt B.ptt [...]\n"
               "       perftrack evolve  [options] --intervals N RUN.ptt\n"
               "       perftrack inspect TRACE.ptt\n"
               "options: --eps X --min-pts N --min-cluster-frac F\n"
               "         --csv FILE --html FILE --gnuplot BASE\n"
               "         --matrices --scatter --intervals N\n"
               "         --no-spmd --no-callstack --no-sequence\n"
               "         --profile FILE --trace-events FILE\n");
  return 2;
}

bool parse(int argc, char** argv, Options& options) {
  if (argc < 2) return false;
  options.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) throw Error("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--eps") options.eps = std::stod(next_value());
    else if (arg == "--min-pts")
      options.min_pts = static_cast<std::size_t>(std::stoul(next_value()));
    else if (arg == "--min-cluster-frac")
      options.min_cluster_frac = std::stod(next_value());
    else if (arg == "--intervals")
      options.intervals = static_cast<std::size_t>(std::stoul(next_value()));
    else if (arg == "--csv") options.csv_path = next_value();
    else if (arg == "--html") options.html_path = next_value();
    else if (arg == "--gnuplot") options.gnuplot_base = next_value();
    else if (arg == "--profile") options.profile_path = next_value();
    else if (arg == "--trace-events") options.trace_events_path = next_value();
    else if (arg == "--matrices") options.matrices = true;
    else if (arg == "--scatter") options.scatter = true;
    else if (arg == "--no-spmd") options.tracking.use_spmd = false;
    else if (arg == "--no-callstack") options.tracking.use_callstack = false;
    else if (arg == "--no-sequence") options.tracking.use_sequence = false;
    else if (arg.rfind("--", 0) == 0) throw Error("unknown option " + arg);
    else options.inputs.push_back(arg);
  }
  return true;
}

int run_tracking(const Options& options,
                 std::vector<std::shared_ptr<const trace::Trace>> traces) {
  tracking::TrackingPipeline pipeline;
  for (auto& t : traces) pipeline.add_experiment(std::move(t));

  cluster::ClusteringParams clustering = sim::default_clustering();
  clustering.dbscan.eps = options.eps;
  clustering.dbscan.min_pts = options.min_pts;
  clustering.min_cluster_time_fraction = options.min_cluster_frac;
  pipeline.set_clustering(clustering);
  pipeline.set_tracking(options.tracking);

  tracking::TrackingResult result = pipeline.run();

  std::cout << tracking::describe_tracking(result) << "\n";
  std::cout << "IPC per region:\n"
            << tracking::trend_table(result, trace::Metric::Ipc).to_text(2)
            << "\n";

  if (options.matrices) {
    for (std::size_t p = 0; p < result.pairs.size(); ++p) {
      std::cout << "displacement " << result.frames[p].label() << " -> "
                << result.frames[p + 1].label() << ":\n"
                << result.pairs[p].displacement.a_to_b.to_text("A", "B")
                << "\ncallstack:\n"
                << result.pairs[p].callstack.to_text("A", "B") << "\n";
    }
  }
  if (options.scatter)
    std::cout << tracking::tracked_scatters(result) << "\n";
  if (!options.csv_path.empty()) {
    std::ofstream out(options.csv_path);
    if (!out) throw IoError("cannot write " + options.csv_path);
    out << tracking::trends_csv(result);
    std::printf("trends written to %s\n", options.csv_path.c_str());
  }
  if (!options.html_path.empty()) {
    tracking::save_html_report(options.html_path, result);
    std::printf("HTML report written to %s\n", options.html_path.c_str());
  }
  if (!options.gnuplot_base.empty()) {
    tracking::save_gnuplot(options.gnuplot_base, result);
    std::printf("gnuplot artefacts written to %s.{frames.dat,trends.dat,gp}\n",
                options.gnuplot_base.c_str());
  }
  return 0;
}

int cmd_track(const Options& options) {
  if (options.inputs.size() < 2) {
    std::fprintf(stderr, "track needs at least two trace files\n");
    return 2;
  }
  std::vector<std::shared_ptr<const trace::Trace>> traces;
  for (const std::string& path : options.inputs)
    traces.push_back(std::make_shared<const trace::Trace>(
        trace::load_trace(path)));
  return run_tracking(options, std::move(traces));
}

int cmd_evolve(const Options& options) {
  if (options.inputs.size() != 1) {
    std::fprintf(stderr, "evolve needs exactly one trace file\n");
    return 2;
  }
  trace::Trace run = trace::load_trace(options.inputs[0]);
  auto slices = trace::split_into_intervals(run, options.intervals);
  std::printf("split %s into %zu intervals\n", run.label().c_str(),
              slices.size());
  return run_tracking(options, std::move(slices));
}

int cmd_inspect(const Options& options) {
  if (options.inputs.size() != 1) {
    std::fprintf(stderr, "inspect needs exactly one trace file\n");
    return 2;
  }
  trace::Trace t = trace::load_trace(options.inputs[0]);
  t.validate();
  std::printf("application %s, label %s, %u tasks, %zu bursts, %.3fs "
              "compute time\n",
              t.application().c_str(), t.label().c_str(), t.num_tasks(),
              t.burst_count(), t.total_computation_time());
  auto shared = std::make_shared<const trace::Trace>(std::move(t));
  cluster::ClusteringParams params = sim::default_clustering();
  params.dbscan.eps = options.eps;
  params.dbscan.min_pts = options.min_pts;
  cluster::Frame frame = cluster::build_frame(shared, params);
  std::printf("%zu behavioural clusters\n", frame.object_count());
  cluster::ScatterOptions scatter;
  scatter.x_axis = 1;
  scatter.y_axis = 0;
  scatter.log_y = true;
  std::cout << cluster::ascii_scatter(frame, scatter);
  return 0;
}

}  // namespace

// Write the requested telemetry sinks; the per-stage summary goes to
// stderr so the tracking output on stdout stays scriptable.
void emit_telemetry(const Options& options, int argc, char** argv) {
  obs::RunReport report = obs::collect();
  for (int i = 0; i < argc; ++i)
    report.label += (i ? " " : "") + std::string(argv[i]);
  if (!options.profile_path.empty()) {
    obs::save_report_json(options.profile_path, report);
    std::fprintf(stderr, "profile written to %s\n",
                 options.profile_path.c_str());
  }
  if (!options.trace_events_path.empty()) {
    obs::save_trace_events(options.trace_events_path);
    std::fprintf(stderr, "trace events written to %s\n",
                 options.trace_events_path.c_str());
  }
  std::fputs(obs::summary_table(report).c_str(), stderr);
}

int main(int argc, char** argv) {
  Options options;
  try {
    if (!parse(argc, argv, options)) return usage();
    const bool profiling =
        !options.profile_path.empty() || !options.trace_events_path.empty();
    if (profiling) obs::set_enabled(true);

    int rc = 2;
    if (options.command == "track") rc = cmd_track(options);
    else if (options.command == "evolve") rc = cmd_evolve(options);
    else if (options.command == "inspect") rc = cmd_inspect(options);
    else return usage();

    if (profiling && rc == 0) emit_telemetry(options, argc, argv);
    return rc;
  } catch (const Error& error) {
    std::fprintf(stderr, "perftrack: %s\n", error.what());
    return 1;
  }
}
