#pragma once
// Declarative command-line option tables shared by the perftrack tools.
//
// Each tool lists its flags once in an OptionTable; the table drives both
// the parser and the generated usage text, so the two cannot drift (the old
// hand-rolled argv loops kept growing flags that the usage string forgot).
// Value parsing is strict: a numeric flag must consume its operand in full
// and satisfy its per-flag range, so "--eps banana" or "--min-pts -3" is a
// usage error (exit code 2) rather than an unhandled std::stod exception or
// a silent unsigned wraparound.
//
// Usage pattern:
//
//   cli::OptionTable table;
//   table.tool = "perftrack";
//   table.commands = {"track [options] A.ptt B.ptt [...]"};
//   table.add("--eps", "X", "DBSCAN radius (0.025)",
//             [&](const std::string& v) { eps = cli::parse_double("--eps", v); });
//   table.add_switch("--lenient", "tolerate malformed records",
//                    [&] { lenient = true; });
//   std::vector<std::string> inputs;
//   table.parse(argc, argv, 2, inputs);   // throws cli::UsageError
//
// UsageError is deliberately not a perftrack::Error: the tools print the
// message plus the generated usage text and exit 2, distinct from internal
// errors (1), parse failures (3) and I/O failures (4).

#include <cmath>
#include <functional>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

namespace perftrack::cli {

/// A command-line mistake: unknown flag, missing operand, or an operand
/// that fails its flag's validation. Callers print usage and exit 2.
class UsageError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

/// Parse a full-string finite double for `flag`; UsageError otherwise.
inline double parse_double(const std::string& flag, const std::string& text) {
  double value = 0.0;
  std::size_t used = 0;
  try {
    value = std::stod(text, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != text.size() || text.empty() || !std::isfinite(value))
    throw UsageError("invalid value for " + flag + ": '" + text +
                     "' (expected a number)");
  return value;
}

/// Parse a non-negative integer count for `flag`. A leading sign is
/// rejected outright: "-3" must be a usage error, not the 2^64-3 that
/// std::stoul would happily produce. `min_value` enforces per-flag floors
/// (e.g. --min-pts needs at least 1).
inline std::size_t parse_count(const std::string& flag,
                               const std::string& text,
                               std::size_t min_value = 0) {
  unsigned long long value = 0;
  std::size_t used = 0;
  if (!text.empty() && text[0] != '-' && text[0] != '+') {
    try {
      value = std::stoull(text, &used);
    } catch (const std::exception&) {
      used = 0;
    }
  }
  if (used != text.size() || text.empty())
    throw UsageError("invalid value for " + flag + ": '" + text +
                     "' (expected a non-negative integer)");
  if (value < min_value)
    throw UsageError("invalid value for " + flag + ": '" + text +
                     "' (must be at least " + std::to_string(min_value) + ")");
  if (value > std::numeric_limits<std::size_t>::max())
    throw UsageError("invalid value for " + flag + ": '" + text +
                     "' (too large)");
  return static_cast<std::size_t>(value);
}

/// One command-line flag: a value option ("--eps X") or, with an empty
/// value_name, a switch ("--lenient").
struct Option {
  std::string flag;
  std::string value_name;  ///< empty = switch, no operand
  std::string help;
  std::function<void(const std::string&)> apply;  ///< operand ("" for switches)
};

struct OptionTable {
  std::string tool;                   ///< "perftrack"
  std::vector<std::string> commands;  ///< usage lines, tool name omitted
  std::string footer;                 ///< e.g. the exit-code legend

  void add(std::string flag, std::string value_name, std::string help,
           std::function<void(const std::string&)> apply) {
    options.push_back({std::move(flag), std::move(value_name),
                       std::move(help), std::move(apply)});
  }

  void add_switch(std::string flag, std::string help,
                  std::function<void()> apply) {
    options.push_back({std::move(flag), "", std::move(help),
                       [apply = std::move(apply)](const std::string&) {
                         apply();
                       }});
  }

  /// Usage text generated from the table (commands, one option per line
  /// with aligned help, then the footer).
  std::string usage() const {
    std::string text;
    std::string prefix = "usage: ";
    for (const std::string& command : commands) {
      text += prefix + tool + " " + command + "\n";
      prefix = "       ";
    }
    std::size_t width = 0;
    for (const Option& option : options) {
      std::size_t head = option.flag.size();
      if (!option.value_name.empty()) head += 1 + option.value_name.size();
      width = head > width ? head : width;
    }
    if (!options.empty()) text += "options:\n";
    for (const Option& option : options) {
      std::string head = option.flag;
      if (!option.value_name.empty()) head += " " + option.value_name;
      text += "  " + head + std::string(width - head.size() + 2, ' ') +
              option.help + "\n";
    }
    text += footer;
    return text;
  }

  /// Parse argv[begin..argc): flags dispatch through the table, everything
  /// else lands in `positionals` in order. Throws UsageError on an unknown
  /// flag, a missing operand, or a value a parser rejects.
  void parse(int argc, char** argv, int begin,
             std::vector<std::string>& positionals) const {
    for (int i = begin; i < argc; ++i) {
      std::string arg = argv[i];
      const Option* match = nullptr;
      for (const Option& option : options)
        if (option.flag == arg) {
          match = &option;
          break;
        }
      if (match == nullptr) {
        // Unmatched "--" arguments are mistakes; anything else (including
        // short flags a tool chose not to declare) is a positional.
        if (arg.rfind("--", 0) == 0) throw UsageError("unknown option " + arg);
        positionals.push_back(std::move(arg));
        continue;
      }
      std::string value;
      if (!match->value_name.empty()) {
        if (i + 1 >= argc) throw UsageError("missing value for " + arg);
        value = argv[++i];
      }
      match->apply(value);
    }
  }

  std::vector<Option> options;
};

}  // namespace perftrack::cli
