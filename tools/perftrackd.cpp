// perftrackd — long-running tracking service over the NDJSON protocol.
//
// The paper's workflow is interactive: an analyst appends experiments one
// at a time and re-examines the tracked regions. perftrackd keeps the
// sessions warm between questions — one TrackingSession per named study,
// served concurrently:
//
//   perftrackd --socket /tmp/perftrack.sock     # daemon on a unix socket
//   perftrackd --stdio                          # one connection on stdio
//
// Durability (docs/SERVING.md): --state-dir DIR journals every study
// mutation to a per-study write-ahead log before applying it, and
// recovers all studies from the journals at boot — a crashed daemon
// restarted on the same state dir answers regions/trends byte-identically
// to one that never crashed. --fsync picks the durability/latency
// trade-off; torn tails are truncated and unreadable journals quarantined
// with diagnostics rather than refusing to boot.
//
// Observability (docs/OBSERVABILITY.md): the daemon always records live
// per-method latency histograms and counters (--no-metrics turns them
// off), sampled via the `stats`/`metrics`/`health` protocol methods,
// `perftrack stat`, or a dedicated HTTP scrape listener
// (--metrics-socket PATH / --metrics-port N serving GET /metrics).
// --access-log FILE writes one NDJSON line per request with the
// parse/queue/lock/handler/write breakdown; --slow-ms N additionally
// dumps the span tree of any request slower than N ms.
//
// Requests are newline-delimited JSON (docs/SERVING.md):
//
//   {"id":1,"method":"open_study","study":"wrf"}
//   {"id":2,"method":"append_experiment","study":"wrf",
//    "params":{"path":"wrf_128.ptt"}}
//   {"id":3,"method":"retrack","study":"wrf"}
//   {"id":4,"method":"regions","study":"wrf"}
//
// Responses for regions/trends/coverage are byte-identical to what a
// batch `perftrack track` run over the same traces would report. SIGTERM,
// SIGINT, EOF (--stdio) and the `shutdown` method all drain gracefully:
// admitted requests complete and flush before the process exits.
//
// Exit codes: 0 clean shutdown, 1 internal error, 2 usage.

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "align/nw.hpp"
#include "cli.hpp"
#include "common/error.hpp"
#include "obs/report.hpp"
#include "obs/telemetry.hpp"
#include "serve/client.hpp"
#include "serve/metrics_http.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "serve/shard.hpp"
#include "sim/studies.hpp"
#include "store/frame_store.hpp"

using namespace perftrack;

namespace {

constexpr int kExitOk = 0;
constexpr int kExitInternal = 1;
constexpr int kExitUsage = 2;

struct Options {
  bool stdio = false;
  std::string socket_path;
  std::string listen;  ///< TCP HOST:PORT ("" = no TCP listener)
  bool front = false;
  std::size_t shards = 2;
  std::string shard_dir;
  double eps = 0.025;
  std::size_t min_pts = 5;
  double min_cluster_frac = 0.005;
  align::AlignmentEngine align_engine = align::AlignmentEngine::kAuto;
  bool lenient = false;
  bool no_cache = false;
  std::size_t max_errors = 100;
  std::size_t idle_ttl_sec = 0;
  std::size_t max_sessions = 0;
  std::size_t sweep_interval_ms = 0;
  std::string state_dir;
  serve::FsyncMode fsync = serve::FsyncMode::Batch;
  std::size_t journal_compact = 4096;
  std::string cache_dir;
  std::string profile_path;
  std::string trace_events_path;
  std::string metrics_socket;
  long metrics_port = -1;  ///< -1 = off; 0 = ephemeral
  std::string access_log_path;
  bool no_metrics = false;
  serve::ServerOptions server;
};

cli::OptionTable option_table(Options& options) {
  cli::OptionTable table;
  table.tool = "perftrackd";
  table.commands = {
      "--socket PATH [options]",
      "--listen HOST:PORT [options]",
      "--stdio [options]",
      "--front --shards N (--socket PATH | --listen HOST:PORT) [options]",
  };
  table.footer =
      "exit codes: 0 clean shutdown, 1 error, 2 usage\n"
      "protocol:   newline-delimited JSON, see docs/SERVING.md\n";
  auto* o = &options;
  table.add("--socket", "PATH", "listen on an AF_UNIX stream socket",
            [o](const std::string& v) { o->socket_path = v; });
  table.add("--listen", "HOST:PORT",
            "listen on a TCP socket (numeric IPv4; port 0 = ephemeral)",
            [o](const std::string& v) { o->listen = v; });
  table.add_switch("--stdio",
                   "serve one connection on stdin/stdout (tests, scripts)",
                   [o] { o->stdio = true; });
  table.add_switch("--front",
                   "shard-by-study front: spawn worker daemons and route "
                   "requests by study name (see --shards)",
                   [o] { o->front = true; });
  table.add("--shards", "N", "worker daemons behind --front (2)",
            [o](const std::string& v) {
              o->shards = cli::parse_count("--shards", v, 1);
            });
  table.add("--shard-dir", "DIR",
            "directory for the workers' AF_UNIX sockets (default: under "
            "--state-dir, or /tmp/perftrackd-<pid>-shards)",
            [o](const std::string& v) { o->shard_dir = v; });
  table.add("--threads", "N",
            "request worker threads (0 = hardware concurrency)",
            [o](const std::string& v) {
              o->server.threads = cli::parse_count("--threads", v);
            });
  table.add("--queue", "N",
            "max requests in flight before overload rejection (64)",
            [o](const std::string& v) {
              o->server.queue_capacity = cli::parse_count("--queue", v, 1);
            });
  table.add("--idle-ttl", "SEC",
            "evict session state of studies idle this long (0 = never)",
            [o](const std::string& v) {
              o->idle_ttl_sec = cli::parse_count("--idle-ttl", v);
            });
  table.add("--max-sessions", "N",
            "keep at most N resident sessions, LRU-evict beyond (0 = all)",
            [o](const std::string& v) {
              o->max_sessions = cli::parse_count("--max-sessions", v);
            });
  table.add("--sweep-interval", "MS",
            "period of the idle-eviction sweeper (0 = only on demand)",
            [o](const std::string& v) {
              o->sweep_interval_ms = cli::parse_count("--sweep-interval", v);
            });
  table.add("--eps", "X", "default DBSCAN radius for new studies (0.025)",
            [o](const std::string& v) {
              o->eps = cli::parse_double("--eps", v);
              if (o->eps <= 0.0)
                throw cli::UsageError("invalid value for --eps: '" + v +
                                      "' (must be positive)");
            });
  table.add("--min-pts", "N", "default DBSCAN core threshold (5)",
            [o](const std::string& v) {
              o->min_pts = cli::parse_count("--min-pts", v, 1);
            });
  table.add("--min-cluster-frac", "F",
            "default minimum cluster time share (0.005)",
            [o](const std::string& v) {
              o->min_cluster_frac =
                  cli::parse_double("--min-cluster-frac", v);
              if (o->min_cluster_frac < 0.0 || o->min_cluster_frac >= 1.0)
                throw cli::UsageError(
                    "invalid value for --min-cluster-frac: '" + v +
                    "' (must be in [0, 1))");
            });
  table.add("--align-engine", "ENGINE",
            "pairwise alignment engine for every study: auto | full | "
            "banded (auto; byte-identical output for every choice)",
            [o](const std::string& v) {
              auto engine = align::parse_alignment_engine(v);
              if (!engine)
                throw cli::UsageError(
                    "invalid value for --align-engine: '" + v +
                    "' (expected auto, full or banded)");
              o->align_engine = *engine;
            });
  table.add_switch("--strict",
                   "abort ingestion on the first malformed record (default)",
                   [o] { o->lenient = false; });
  table.add_switch("--lenient",
                   "default new studies to lenient ingestion (failed "
                   "experiments become gaps)",
                   [o] { o->lenient = true; });
  table.add("--max-errors", "N",
            "lenient-mode error budget per ingested file (100)",
            [o](const std::string& v) {
              o->max_errors = cli::parse_count("--max-errors", v);
            });
  table.add("--state-dir", "DIR",
            "durable study state: per-study write-ahead journals, "
            "recovered at boot (default: in-memory only)",
            [o](const std::string& v) { o->state_dir = v; });
  table.add("--fsync", "MODE",
            "journal durability: always | batch | off (batch)",
            [o](const std::string& v) {
              try {
                o->fsync = serve::fsync_mode_from_name(v);
              } catch (const Error& error) {
                throw cli::UsageError(error.what());
              }
            });
  table.add("--journal-compact", "N",
            "compact a study's journal every N appends (4096; 0 = never)",
            [o](const std::string& v) {
              o->journal_compact = cli::parse_count("--journal-compact", v);
            });
  table.add("--max-line-bytes", "N",
            "reject request lines longer than N bytes (8388608; 0 = no cap)",
            [o](const std::string& v) {
              o->server.max_line_bytes =
                  cli::parse_count("--max-line-bytes", v);
            });
  table.add("--cache-dir", "DIR",
            "frame cache for every study (default: $PERFTRACK_CACHE)",
            [o](const std::string& v) { o->cache_dir = v; });
  table.add_switch("--no-cache",
                   "disable the frame cache even if PERFTRACK_CACHE is set",
                   [o] { o->no_cache = true; });
  table.add("--profile", "FILE",
            "write a JSON run report (per-endpoint spans) at shutdown",
            [o](const std::string& v) { o->profile_path = v; });
  table.add("--trace-events", "FILE",
            "write Chrome trace_event JSON at shutdown",
            [o](const std::string& v) { o->trace_events_path = v; });
  table.add("--metrics-socket", "PATH",
            "serve GET /metrics on an AF_UNIX HTTP listener",
            [o](const std::string& v) { o->metrics_socket = v; });
  table.add("--metrics-port", "N",
            "serve GET /metrics on 127.0.0.1:N (0 = ephemeral port)",
            [o](const std::string& v) {
              o->metrics_port = static_cast<long>(
                  cli::parse_count("--metrics-port", v));
              if (o->metrics_port > 65535)
                throw cli::UsageError("invalid value for --metrics-port: '" +
                                      v + "' (max 65535)");
            });
  table.add("--access-log", "FILE",
            "append one NDJSON line per request (phase breakdown)",
            [o](const std::string& v) { o->access_log_path = v; });
  table.add("--slow-ms", "N",
            "dump the span tree of requests slower than N ms (0 = all)",
            [o](const std::string& v) {
              o->server.slow_ns = static_cast<std::uint64_t>(
                                      cli::parse_count("--slow-ms", v)) *
                                  1000000ull;
            });
  table.add_switch("--no-metrics",
                   "disable live metrics recording (histograms/counters)",
                   [o] { o->no_metrics = true; });
  return table;
}

int usage(const cli::OptionTable& table) {
  std::fputs(table.usage().c_str(), stderr);
  return kExitUsage;
}

serve::ServiceConfig service_config(const Options& options) {
  serve::ServiceConfig config;
  config.session.clustering = sim::default_clustering();
  config.session.clustering.dbscan.eps = options.eps;
  config.session.clustering.dbscan.min_pts = options.min_pts;
  config.session.clustering.min_cluster_time_fraction =
      options.min_cluster_frac;
  config.session.tracking.alignment_engine = options.align_engine;
  config.session.resilience.lenient = options.lenient;
  if (!options.no_cache)
    config.session.cache.directory =
        options.cache_dir.empty() ? store::FrameStore::environment_directory()
                                  : options.cache_dir;
  config.max_errors = options.max_errors;
  config.idle_ttl_ns =
      static_cast<std::uint64_t>(options.idle_ttl_sec) * 1000000000ull;
  config.max_resident = options.max_sessions;
  config.metrics = !options.no_metrics;
  config.journal.directory = options.state_dir;
  config.journal.fsync = options.fsync;
  config.journal.compact_threshold = options.journal_compact;
  return config;
}

/// Split --listen HOST:PORT; throws UsageError on anything malformed.
void parse_listen(const std::string& value, std::string& host,
                  std::uint16_t& port) {
  const std::size_t colon = value.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == value.size())
    throw cli::UsageError("--listen needs HOST:PORT, got '" + value + "'");
  host = value.substr(0, colon);
  const std::size_t parsed =
      cli::parse_count("--listen", value.substr(colon + 1));
  if (parsed > 65535)
    throw cli::UsageError("--listen port out of range in '" + value + "'");
  port = static_cast<std::uint16_t>(parsed);
}

/// One worker connection of the shard front: NdjsonClient is
/// one-request-at-a-time, so the mutex serializes the front's threads
/// over it. Reconnects (daemon restart) are the client's retry policy.
struct ShardConn {
  std::mutex mutex;
  std::unique_ptr<serve::NdjsonClient> client;
};

/// Spawn one worker daemon re-execing this binary with the per-shard
/// socket/state paths plus every study-affecting option passed through.
/// Returns the child pid.
pid_t spawn_worker(const Options& options, const std::string& socket_path,
                   const std::string& state_dir) {
  std::vector<std::string> args = {
      "/proc/self/exe", "--socket", socket_path,
      "--eps", std::to_string(options.eps),
      "--min-pts", std::to_string(options.min_pts),
      "--min-cluster-frac", std::to_string(options.min_cluster_frac),
      "--max-errors", std::to_string(options.max_errors),
      "--idle-ttl", std::to_string(options.idle_ttl_sec),
      "--max-sessions", std::to_string(options.max_sessions),
      "--sweep-interval", std::to_string(options.sweep_interval_ms),
      "--queue", std::to_string(options.server.queue_capacity),
      "--max-line-bytes", std::to_string(options.server.max_line_bytes),
      "--journal-compact", std::to_string(options.journal_compact),
      "--fsync", std::string(serve::fsync_mode_name(options.fsync)),
  };
  if (options.lenient) args.push_back("--lenient");
  if (options.no_cache) args.push_back("--no-cache");
  if (!options.cache_dir.empty()) {
    args.push_back("--cache-dir");
    args.push_back(options.cache_dir);
  }
  if (!state_dir.empty()) {
    args.push_back("--state-dir");
    args.push_back(state_dir);
  }
  if (options.server.threads != 0) {
    args.push_back("--threads");
    args.push_back(std::to_string(options.server.threads));
  }
  if (options.align_engine != align::AlignmentEngine::kAuto) {
    args.push_back("--align-engine");
    args.push_back(align::to_string(options.align_engine));
  }
  if (options.no_metrics) args.push_back("--no-metrics");

  const pid_t pid = ::fork();
  if (pid < 0) throw Error(std::string("fork(): ") + std::strerror(errno));
  if (pid == 0) {
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& arg : args) argv.push_back(arg.data());
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    std::fprintf(stderr, "perftrackd: execv(%s): %s\n", argv[0],
                 std::strerror(errno));
    ::_exit(kExitInternal);
  }
  return pid;
}

/// --front: spawn the worker fleet, build a ShardFront over NdjsonClient
/// backends, serve it on the requested transport, then shut the workers
/// down and reap them.
int run_front(const Options& options,
              const std::function<int(serve::Dispatcher&)>& serve_with) {
  std::string shard_dir = options.shard_dir;
  if (shard_dir.empty())
    shard_dir = options.state_dir.empty()
                    ? "/tmp/perftrackd-" + std::to_string(::getpid()) +
                          "-shards"
                    : options.state_dir + "/shards";
  // mkdir -p: the default lives under --state-dir, which may not exist
  // yet on a first run.
  for (std::size_t slash = shard_dir.find('/', 1);;
       slash = shard_dir.find('/', slash + 1)) {
    const std::string prefix =
        slash == std::string::npos ? shard_dir : shard_dir.substr(0, slash);
    if (!prefix.empty() && ::mkdir(prefix.c_str(), 0700) != 0 &&
        errno != EEXIST)
      throw Error("cannot create shard dir " + prefix + ": " +
                  std::strerror(errno));
    if (slash == std::string::npos) break;
  }

  std::vector<pid_t> pids;
  std::vector<std::string> sockets;
  for (std::size_t i = 0; i < options.shards; ++i) {
    const std::string socket_path =
        shard_dir + "/shard-" + std::to_string(i) + ".sock";
    const std::string state_dir =
        options.state_dir.empty()
            ? ""
            : options.state_dir + "/shard-" + std::to_string(i);
    sockets.push_back(socket_path);
    pids.push_back(spawn_worker(options, socket_path, state_dir));
  }

  int rc = kExitInternal;
  {
    // Generous connect retries: the workers are booting (and possibly
    // replaying journals) while we connect. Modest roundtrip retries: a
    // worker that died mid-serve should fail requests, not hang them.
    serve::RetryPolicy retry;
    retry.attempts = 50;
    retry.deadline_ms = 2000;
    retry.backoff_ms = 20;
    retry.backoff_max_ms = 200;

    std::vector<std::shared_ptr<ShardConn>> conns;
    std::vector<serve::ShardFront::Backend> backends;
    for (const std::string& socket_path : sockets) {
      auto conn = std::make_shared<ShardConn>();
      conn->client =
          std::make_unique<serve::NdjsonClient>(socket_path, retry);
      conns.push_back(conn);
      backends.push_back([conn](const std::string& line) {
        std::lock_guard<std::mutex> lock(conn->mutex);
        return conn->client->roundtrip(line);
      });
    }

    serve::ShardFront front(std::move(backends), !options.no_metrics);
    std::fprintf(stderr, "front: %zu shards under %s\n", options.shards,
                 shard_dir.c_str());
    rc = serve_with(front);

    // The protocol `shutdown` already drained the workers through the
    // front; the signal path did not. Either way, tell every worker to
    // drain now — a second shutdown is idempotent — and reap them.
    for (auto& conn : conns) {
      std::lock_guard<std::mutex> lock(conn->mutex);
      try {
        conn->client->roundtrip("{\"method\":\"shutdown\"}");
      } catch (const Error&) {
        // Already gone — that is what we wanted.
      }
    }
  }
  for (pid_t pid : pids) {
    int status = 0;
    ::waitpid(pid, &status, 0);
  }
  return rc;
}

void emit_telemetry(const Options& options) {
  if (options.profile_path.empty() && options.trace_events_path.empty())
    return;
  obs::RunReport report = obs::collect();
  report.label = "perftrackd";
  if (!options.profile_path.empty()) {
    obs::save_report_json(options.profile_path, report);
    std::fprintf(stderr, "profile written to %s\n",
                 options.profile_path.c_str());
  }
  if (!options.trace_events_path.empty()) {
    obs::save_trace_events(options.trace_events_path);
    std::fprintf(stderr, "trace events written to %s\n",
                 options.trace_events_path.c_str());
  }
  std::fputs(obs::summary_table(report).c_str(), stderr);
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  cli::OptionTable table = option_table(options);
  try {
    std::vector<std::string> positionals;
    table.parse(argc, argv, 1, positionals);
    if (!positionals.empty())
      throw cli::UsageError("unexpected argument '" + positionals.front() +
                            "'");
    const int transports = (options.stdio ? 1 : 0) +
                           (options.socket_path.empty() ? 0 : 1) +
                           (options.listen.empty() ? 0 : 1);
    if (transports != 1)
      throw cli::UsageError(
          "pick exactly one of --stdio, --socket PATH, or --listen "
          "HOST:PORT");
    std::string listen_host;
    std::uint16_t listen_port = 0;
    if (!options.listen.empty())
      parse_listen(options.listen, listen_host, listen_port);
    if (options.front &&
        (!options.metrics_socket.empty() || options.metrics_port >= 0))
      throw cli::UsageError(
          "--front has no HTTP metrics listener; scrape the workers' "
          "(each worker exposes the full metrics plane)");

    if (!options.profile_path.empty() || !options.trace_events_path.empty())
      obs::set_enabled(true);
    // The slow-request dump replays telemetry spans; recording must be on
    // for them to exist.
    if (options.server.slow_ns != ~0ull) obs::set_enabled(true);
    options.server.sweep_interval_ms = options.sweep_interval_ms;

    std::ofstream access_log_file;
    std::unique_ptr<serve::AccessLog> access_log;
    if (!options.access_log_path.empty()) {
      access_log_file.open(options.access_log_path, std::ios::app);
      if (!access_log_file)
        throw Error("cannot open access log " + options.access_log_path);
      access_log = std::make_unique<serve::AccessLog>(access_log_file);
      options.server.access_log = access_log.get();
    }

    auto serve_with = [&](serve::Dispatcher& dispatcher) {
      if (options.stdio)
        return serve::serve_stream(dispatcher, std::cin, std::cout,
                                   options.server);
      if (!options.listen.empty())
        return serve::serve_tcp(dispatcher, listen_host, listen_port,
                                options.server, [](std::uint16_t port) {
                                  // Print the resolved port so scripts
                                  // using --listen HOST:0 can connect.
                                  std::fprintf(stderr, "listen port %u\n",
                                               port);
                                });
      return serve::serve_unix_socket(dispatcher, options.socket_path,
                                      options.server);
    };

    if (options.front) {
      const int rc = run_front(options, serve_with);
      emit_telemetry(options);
      return rc == 0 ? kExitOk : kExitInternal;
    }

    serve::TrackingService service(service_config(options));

    serve::MetricsHttpServer metrics_http(service);
    if (!options.metrics_socket.empty() &&
        !metrics_http.start_unix(options.metrics_socket))
      return kExitInternal;
    if (options.metrics_port >= 0) {
      if (!metrics_http.start_tcp(
              static_cast<std::uint16_t>(options.metrics_port)))
        return kExitInternal;
      // Print the resolved port so scripts using --metrics-port 0 can
      // find the endpoint.
      std::fprintf(stderr, "metrics port %u\n", metrics_http.port());
    }

    int rc = serve_with(service);
    metrics_http.stop();
    // Part of the graceful drain: batch-mode journals may hold unsynced
    // records; flush them before reporting a clean exit.
    service.flush_journals();
    emit_telemetry(options);
    return rc == 0 ? kExitOk : kExitInternal;
  } catch (const cli::UsageError& error) {
    std::fprintf(stderr, "perftrackd: %s\n", error.what());
    return usage(table);
  } catch (const Error& error) {
    std::fprintf(stderr, "perftrackd: %s\n", error.what());
    return kExitInternal;
  }
}
