// perftrackd — long-running tracking service over the NDJSON protocol.
//
// The paper's workflow is interactive: an analyst appends experiments one
// at a time and re-examines the tracked regions. perftrackd keeps the
// sessions warm between questions — one TrackingSession per named study,
// served concurrently:
//
//   perftrackd --socket /tmp/perftrack.sock     # daemon on a unix socket
//   perftrackd --stdio                          # one connection on stdio
//
// Durability (docs/SERVING.md): --state-dir DIR journals every study
// mutation to a per-study write-ahead log before applying it, and
// recovers all studies from the journals at boot — a crashed daemon
// restarted on the same state dir answers regions/trends byte-identically
// to one that never crashed. --fsync picks the durability/latency
// trade-off; torn tails are truncated and unreadable journals quarantined
// with diagnostics rather than refusing to boot.
//
// Observability (docs/OBSERVABILITY.md): the daemon always records live
// per-method latency histograms and counters (--no-metrics turns them
// off), sampled via the `stats`/`metrics`/`health` protocol methods,
// `perftrack stat`, or a dedicated HTTP scrape listener
// (--metrics-socket PATH / --metrics-port N serving GET /metrics).
// --access-log FILE writes one NDJSON line per request with the
// parse/queue/lock/handler/write breakdown; --slow-ms N additionally
// dumps the span tree of any request slower than N ms.
//
// Requests are newline-delimited JSON (docs/SERVING.md):
//
//   {"id":1,"method":"open_study","study":"wrf"}
//   {"id":2,"method":"append_experiment","study":"wrf",
//    "params":{"path":"wrf_128.ptt"}}
//   {"id":3,"method":"retrack","study":"wrf"}
//   {"id":4,"method":"regions","study":"wrf"}
//
// Responses for regions/trends/coverage are byte-identical to what a
// batch `perftrack track` run over the same traces would report. SIGTERM,
// SIGINT, EOF (--stdio) and the `shutdown` method all drain gracefully:
// admitted requests complete and flush before the process exits.
//
// Exit codes: 0 clean shutdown, 1 internal error, 2 usage.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "cli.hpp"
#include "common/error.hpp"
#include "obs/report.hpp"
#include "obs/telemetry.hpp"
#include "serve/metrics_http.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "sim/studies.hpp"
#include "store/frame_store.hpp"

using namespace perftrack;

namespace {

constexpr int kExitOk = 0;
constexpr int kExitInternal = 1;
constexpr int kExitUsage = 2;

struct Options {
  bool stdio = false;
  std::string socket_path;
  double eps = 0.025;
  std::size_t min_pts = 5;
  double min_cluster_frac = 0.005;
  bool lenient = false;
  bool no_cache = false;
  std::size_t max_errors = 100;
  std::size_t idle_ttl_sec = 0;
  std::size_t max_sessions = 0;
  std::size_t sweep_interval_ms = 0;
  std::string state_dir;
  serve::FsyncMode fsync = serve::FsyncMode::Batch;
  std::size_t journal_compact = 4096;
  std::string cache_dir;
  std::string profile_path;
  std::string trace_events_path;
  std::string metrics_socket;
  long metrics_port = -1;  ///< -1 = off; 0 = ephemeral
  std::string access_log_path;
  bool no_metrics = false;
  serve::ServerOptions server;
};

cli::OptionTable option_table(Options& options) {
  cli::OptionTable table;
  table.tool = "perftrackd";
  table.commands = {
      "--socket PATH [options]",
      "--stdio [options]",
  };
  table.footer =
      "exit codes: 0 clean shutdown, 1 error, 2 usage\n"
      "protocol:   newline-delimited JSON, see docs/SERVING.md\n";
  auto* o = &options;
  table.add("--socket", "PATH", "listen on an AF_UNIX stream socket",
            [o](const std::string& v) { o->socket_path = v; });
  table.add_switch("--stdio",
                   "serve one connection on stdin/stdout (tests, scripts)",
                   [o] { o->stdio = true; });
  table.add("--threads", "N",
            "request worker threads (0 = hardware concurrency)",
            [o](const std::string& v) {
              o->server.threads = cli::parse_count("--threads", v);
            });
  table.add("--queue", "N",
            "max requests in flight before overload rejection (64)",
            [o](const std::string& v) {
              o->server.queue_capacity = cli::parse_count("--queue", v, 1);
            });
  table.add("--idle-ttl", "SEC",
            "evict session state of studies idle this long (0 = never)",
            [o](const std::string& v) {
              o->idle_ttl_sec = cli::parse_count("--idle-ttl", v);
            });
  table.add("--max-sessions", "N",
            "keep at most N resident sessions, LRU-evict beyond (0 = all)",
            [o](const std::string& v) {
              o->max_sessions = cli::parse_count("--max-sessions", v);
            });
  table.add("--sweep-interval", "MS",
            "period of the idle-eviction sweeper (0 = only on demand)",
            [o](const std::string& v) {
              o->sweep_interval_ms = cli::parse_count("--sweep-interval", v);
            });
  table.add("--eps", "X", "default DBSCAN radius for new studies (0.025)",
            [o](const std::string& v) {
              o->eps = cli::parse_double("--eps", v);
              if (o->eps <= 0.0)
                throw cli::UsageError("invalid value for --eps: '" + v +
                                      "' (must be positive)");
            });
  table.add("--min-pts", "N", "default DBSCAN core threshold (5)",
            [o](const std::string& v) {
              o->min_pts = cli::parse_count("--min-pts", v, 1);
            });
  table.add("--min-cluster-frac", "F",
            "default minimum cluster time share (0.005)",
            [o](const std::string& v) {
              o->min_cluster_frac =
                  cli::parse_double("--min-cluster-frac", v);
              if (o->min_cluster_frac < 0.0 || o->min_cluster_frac >= 1.0)
                throw cli::UsageError(
                    "invalid value for --min-cluster-frac: '" + v +
                    "' (must be in [0, 1))");
            });
  table.add_switch("--strict",
                   "abort ingestion on the first malformed record (default)",
                   [o] { o->lenient = false; });
  table.add_switch("--lenient",
                   "default new studies to lenient ingestion (failed "
                   "experiments become gaps)",
                   [o] { o->lenient = true; });
  table.add("--max-errors", "N",
            "lenient-mode error budget per ingested file (100)",
            [o](const std::string& v) {
              o->max_errors = cli::parse_count("--max-errors", v);
            });
  table.add("--state-dir", "DIR",
            "durable study state: per-study write-ahead journals, "
            "recovered at boot (default: in-memory only)",
            [o](const std::string& v) { o->state_dir = v; });
  table.add("--fsync", "MODE",
            "journal durability: always | batch | off (batch)",
            [o](const std::string& v) {
              try {
                o->fsync = serve::fsync_mode_from_name(v);
              } catch (const Error& error) {
                throw cli::UsageError(error.what());
              }
            });
  table.add("--journal-compact", "N",
            "compact a study's journal every N appends (4096; 0 = never)",
            [o](const std::string& v) {
              o->journal_compact = cli::parse_count("--journal-compact", v);
            });
  table.add("--max-line-bytes", "N",
            "reject request lines longer than N bytes (8388608; 0 = no cap)",
            [o](const std::string& v) {
              o->server.max_line_bytes =
                  cli::parse_count("--max-line-bytes", v);
            });
  table.add("--cache-dir", "DIR",
            "frame cache for every study (default: $PERFTRACK_CACHE)",
            [o](const std::string& v) { o->cache_dir = v; });
  table.add_switch("--no-cache",
                   "disable the frame cache even if PERFTRACK_CACHE is set",
                   [o] { o->no_cache = true; });
  table.add("--profile", "FILE",
            "write a JSON run report (per-endpoint spans) at shutdown",
            [o](const std::string& v) { o->profile_path = v; });
  table.add("--trace-events", "FILE",
            "write Chrome trace_event JSON at shutdown",
            [o](const std::string& v) { o->trace_events_path = v; });
  table.add("--metrics-socket", "PATH",
            "serve GET /metrics on an AF_UNIX HTTP listener",
            [o](const std::string& v) { o->metrics_socket = v; });
  table.add("--metrics-port", "N",
            "serve GET /metrics on 127.0.0.1:N (0 = ephemeral port)",
            [o](const std::string& v) {
              o->metrics_port = static_cast<long>(
                  cli::parse_count("--metrics-port", v));
              if (o->metrics_port > 65535)
                throw cli::UsageError("invalid value for --metrics-port: '" +
                                      v + "' (max 65535)");
            });
  table.add("--access-log", "FILE",
            "append one NDJSON line per request (phase breakdown)",
            [o](const std::string& v) { o->access_log_path = v; });
  table.add("--slow-ms", "N",
            "dump the span tree of requests slower than N ms (0 = all)",
            [o](const std::string& v) {
              o->server.slow_ns = static_cast<std::uint64_t>(
                                      cli::parse_count("--slow-ms", v)) *
                                  1000000ull;
            });
  table.add_switch("--no-metrics",
                   "disable live metrics recording (histograms/counters)",
                   [o] { o->no_metrics = true; });
  return table;
}

int usage(const cli::OptionTable& table) {
  std::fputs(table.usage().c_str(), stderr);
  return kExitUsage;
}

serve::ServiceConfig service_config(const Options& options) {
  serve::ServiceConfig config;
  config.session.clustering = sim::default_clustering();
  config.session.clustering.dbscan.eps = options.eps;
  config.session.clustering.dbscan.min_pts = options.min_pts;
  config.session.clustering.min_cluster_time_fraction =
      options.min_cluster_frac;
  config.session.resilience.lenient = options.lenient;
  if (!options.no_cache)
    config.session.cache.directory =
        options.cache_dir.empty() ? store::FrameStore::environment_directory()
                                  : options.cache_dir;
  config.max_errors = options.max_errors;
  config.idle_ttl_ns =
      static_cast<std::uint64_t>(options.idle_ttl_sec) * 1000000000ull;
  config.max_resident = options.max_sessions;
  config.metrics = !options.no_metrics;
  config.journal.directory = options.state_dir;
  config.journal.fsync = options.fsync;
  config.journal.compact_threshold = options.journal_compact;
  return config;
}

void emit_telemetry(const Options& options) {
  if (options.profile_path.empty() && options.trace_events_path.empty())
    return;
  obs::RunReport report = obs::collect();
  report.label = "perftrackd";
  if (!options.profile_path.empty()) {
    obs::save_report_json(options.profile_path, report);
    std::fprintf(stderr, "profile written to %s\n",
                 options.profile_path.c_str());
  }
  if (!options.trace_events_path.empty()) {
    obs::save_trace_events(options.trace_events_path);
    std::fprintf(stderr, "trace events written to %s\n",
                 options.trace_events_path.c_str());
  }
  std::fputs(obs::summary_table(report).c_str(), stderr);
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  cli::OptionTable table = option_table(options);
  try {
    std::vector<std::string> positionals;
    table.parse(argc, argv, 1, positionals);
    if (!positionals.empty())
      throw cli::UsageError("unexpected argument '" + positionals.front() +
                            "'");
    if (options.stdio == !options.socket_path.empty())
      throw cli::UsageError("pick exactly one of --stdio or --socket PATH");

    if (!options.profile_path.empty() || !options.trace_events_path.empty())
      obs::set_enabled(true);
    // The slow-request dump replays telemetry spans; recording must be on
    // for them to exist.
    if (options.server.slow_ns != ~0ull) obs::set_enabled(true);
    options.server.sweep_interval_ms = options.sweep_interval_ms;

    std::ofstream access_log_file;
    std::unique_ptr<serve::AccessLog> access_log;
    if (!options.access_log_path.empty()) {
      access_log_file.open(options.access_log_path, std::ios::app);
      if (!access_log_file)
        throw Error("cannot open access log " + options.access_log_path);
      access_log = std::make_unique<serve::AccessLog>(access_log_file);
      options.server.access_log = access_log.get();
    }

    serve::TrackingService service(service_config(options));

    serve::MetricsHttpServer metrics_http(service);
    if (!options.metrics_socket.empty() &&
        !metrics_http.start_unix(options.metrics_socket))
      return kExitInternal;
    if (options.metrics_port >= 0) {
      if (!metrics_http.start_tcp(
              static_cast<std::uint16_t>(options.metrics_port)))
        return kExitInternal;
      // Print the resolved port so scripts using --metrics-port 0 can
      // find the endpoint.
      std::fprintf(stderr, "metrics port %u\n", metrics_http.port());
    }

    int rc = options.stdio
                 ? serve::serve_stream(service, std::cin, std::cout,
                                       options.server)
                 : serve::serve_unix_socket(service, options.socket_path,
                                            options.server);
    metrics_http.stop();
    // Part of the graceful drain: batch-mode journals may hold unsynced
    // records; flush them before reporting a clean exit.
    service.flush_journals();
    emit_telemetry(options);
    return rc == 0 ? kExitOk : kExitInternal;
  } catch (const cli::UsageError& error) {
    std::fprintf(stderr, "perftrackd: %s\n", error.what());
    return usage(table);
  } catch (const Error& error) {
    std::fprintf(stderr, "perftrackd: %s\n", error.what());
    return kExitInternal;
  }
}
