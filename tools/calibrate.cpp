#include <cstdio>
#include <cstring>
#include "sim/studies.hpp"
#include "tracking/tracker.hpp"
#include "tracking/report.hpp"
using namespace perftrack;
int main(int argc, char** argv) {
  std::vector<sim::Study> studies;
  bool verbose = false;
  std::string which = argc > 1 ? argv[1] : "";
  if (argc > 2 && std::string(argv[2]) == "-v") verbose = true;
  if (which == "wrf") studies.push_back(sim::study_wrf());
  else if (which == "cgpop") studies.push_back(sim::study_cgpop());
  else if (which == "bt") studies.push_back(sim::study_nas_bt());
  else if (which == "gadget") studies.push_back(sim::study_gadget());
  else if (which == "qe") studies.push_back(sim::study_espresso());
  else if (which == "hydroc") studies.push_back(sim::study_hydroc(12));
  else if (which == "mrg") studies.push_back(sim::study_mrgenesis());
  else if (which == "ft") studies.push_back(sim::study_nas_ft());
  else if (which == "gromacs3") studies.push_back(sim::study_gromacs_scaling());
  else if (which == "gromacs20") studies.push_back(sim::study_gromacs_evolution());
  else studies = sim::all_studies();
  for (const auto& st : studies) {
    auto frames = st.frames();
    std::printf("== %-22s frames=%zu objects:", st.name.c_str(), frames.size());
    for (auto& f : frames) std::printf(" %zu", f.object_count());
    auto result = tracking::track_frames(std::move(frames), {});
    std::printf(" -> tracked=%zu coverage=%.0f%%\n", result.complete_count,
                result.coverage * 100);
    if (verbose) std::fputs(tracking::describe_tracking(result).c_str(), stdout);
  }
  return 0;
}
