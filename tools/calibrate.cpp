// calibrate — run the synthetic paper studies and print per-study tracking
// scores, for eyeballing parameter changes against Table 2.
//
//   calibrate [STUDY] [-v|--verbose]

#include <cstdio>
#include <string>
#include <vector>

#include "cli.hpp"
#include "sim/studies.hpp"
#include "tracking/tracker.hpp"
#include "tracking/report.hpp"

using namespace perftrack;

namespace {

cli::OptionTable option_table(bool& verbose) {
  cli::OptionTable table;
  table.tool = "calibrate";
  table.commands = {
      "[STUDY] [options]   (STUDY: wrf cgpop bt gadget qe hydroc mrg ft "
      "gromacs3 gromacs20; default: all)",
  };
  table.add_switch("--verbose", "print the full tracking report per study",
                   [&verbose] { verbose = true; });
  // Original short spelling, kept working.
  table.add_switch("-v", "same as --verbose", [&verbose] { verbose = true; });
  return table;
}

}  // namespace

int main(int argc, char** argv) {
  bool verbose = false;
  cli::OptionTable table = option_table(verbose);
  std::vector<std::string> positionals;
  try {
    table.parse(argc, argv, 1, positionals);
  } catch (const cli::UsageError& error) {
    std::fprintf(stderr, "calibrate: %s\n", error.what());
    std::fputs(table.usage().c_str(), stderr);
    return 2;
  }

  std::vector<sim::Study> studies;
  std::string which = positionals.empty() ? "" : positionals[0];
  if (which == "wrf") studies.push_back(sim::study_wrf());
  else if (which == "cgpop") studies.push_back(sim::study_cgpop());
  else if (which == "bt") studies.push_back(sim::study_nas_bt());
  else if (which == "gadget") studies.push_back(sim::study_gadget());
  else if (which == "qe") studies.push_back(sim::study_espresso());
  else if (which == "hydroc") studies.push_back(sim::study_hydroc(12));
  else if (which == "mrg") studies.push_back(sim::study_mrgenesis());
  else if (which == "ft") studies.push_back(sim::study_nas_ft());
  else if (which == "gromacs3") studies.push_back(sim::study_gromacs_scaling());
  else if (which == "gromacs20")
    studies.push_back(sim::study_gromacs_evolution());
  else studies = sim::all_studies();

  for (const auto& st : studies) {
    auto frames = st.frames();
    std::printf("== %-22s frames=%zu objects:", st.name.c_str(),
                frames.size());
    for (auto& f : frames) std::printf(" %zu", f.object_count());
    auto result = tracking::track_frames(std::move(frames), {});
    std::printf(" -> tracked=%zu coverage=%.0f%%\n", result.complete_count,
                result.coverage * 100);
    if (verbose)
      std::fputs(tracking::describe_tracking(result).c_str(), stdout);
  }
  return 0;
}
