// ptconvert — convert between the perftrack .ptt format and the Paraver
// (.prv + .pcf) pair.
//
//   ptconvert to-prv  INPUT.ptt OUTPUT_BASE      # writes OUTPUT_BASE.{prv,pcf}
//   ptconvert to-ptt  INPUT_BASE OUTPUT.ptt      # reads INPUT_BASE.{prv,pcf}

#include <cstdio>
#include <string>

#include "common/error.hpp"
#include "paraver/prv.hpp"
#include "trace/trace_io.hpp"

using namespace perftrack;

namespace {
int usage() {
  std::fprintf(stderr,
               "usage: ptconvert to-prv INPUT.ptt OUTPUT_BASE\n"
               "       ptconvert to-ptt INPUT_BASE OUTPUT.ptt\n");
  return 2;
}
}  // namespace

int main(int argc, char** argv) {
  if (argc != 4) return usage();
  std::string command = argv[1];
  try {
    if (command == "to-prv") {
      trace::Trace input = trace::load_trace(argv[2]);
      paraver::save_prv(argv[3], input);
      std::printf("wrote %s.prv and %s.pcf (%zu bursts)\n", argv[3],
                  argv[3], input.burst_count());
      return 0;
    }
    if (command == "to-ptt") {
      trace::Trace input = paraver::load_prv(argv[2]);
      trace::save_trace(argv[3], input);
      std::printf("wrote %s (%zu bursts)\n", argv[3], input.burst_count());
      return 0;
    }
  } catch (const Error& error) {
    std::fprintf(stderr, "ptconvert: %s\n", error.what());
    return 1;
  }
  return usage();
}
