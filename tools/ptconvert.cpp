// ptconvert — convert between the perftrack .ptt format and the Paraver
// (.prv + .pcf) pair.
//
//   ptconvert to-prv  INPUT.ptt OUTPUT_BASE      # writes OUTPUT_BASE.{prv,pcf}
//   ptconvert to-ptt  INPUT_BASE OUTPUT.ptt      # reads INPUT_BASE.{prv,pcf}

#include <cstdio>
#include <string>
#include <vector>

#include "cli.hpp"
#include "common/error.hpp"
#include "paraver/prv.hpp"
#include "trace/trace_io.hpp"

using namespace perftrack;

namespace {

cli::OptionTable option_table() {
  cli::OptionTable table;
  table.tool = "ptconvert";
  table.commands = {
      "to-prv INPUT.ptt OUTPUT_BASE   (writes OUTPUT_BASE.{prv,pcf})",
      "to-ptt INPUT_BASE OUTPUT.ptt   (reads INPUT_BASE.{prv,pcf})",
  };
  return table;
}

int usage(const cli::OptionTable& table) {
  std::fputs(table.usage().c_str(), stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  cli::OptionTable table = option_table();
  try {
    if (argc < 2) return usage(table);
    std::string command = argv[1];
    std::vector<std::string> inputs;
    table.parse(argc, argv, 2, inputs);
    if (inputs.size() != 2) return usage(table);
    if (command == "to-prv") {
      trace::Trace input = trace::load_trace(inputs[0]);
      paraver::save_prv(inputs[1], input);
      std::printf("wrote %s.prv and %s.pcf (%zu bursts)\n", inputs[1].c_str(),
                  inputs[1].c_str(), input.burst_count());
      return 0;
    }
    if (command == "to-ptt") {
      trace::Trace input = paraver::load_prv(inputs[0]);
      trace::save_trace(inputs[1], input);
      std::printf("wrote %s (%zu bursts)\n", inputs[1].c_str(),
                  input.burst_count());
      return 0;
    }
  } catch (const cli::UsageError& error) {
    std::fprintf(stderr, "ptconvert: %s\n", error.what());
    return usage(table);
  } catch (const Error& error) {
    std::fprintf(stderr, "ptconvert: %s\n", error.what());
    return 1;
  }
  return usage(table);
}
